(* rfsim: command-line front end over the rfkit engines.

   Reads a SPICE-like deck (see Rfkit.Circuit.Deck for the grammar) and
   runs the analyses given on the command line or embedded as deck
   directives (.dc/.tran/.ac/.hb). Every analysis first runs the static
   netlist analyzer (Rfkit.Lint) and refuses to start numerics on an
   error-severity diagnostic unless --no-lint is given.

     rfsim lint circuit.cir [--json] [--strict]
     rfsim run circuit.cir
     rfsim dc circuit.cir
     rfsim tran circuit.cir --t-stop 1e-6 --dt 1e-9 --node out
     rfsim ac circuit.cir --f-start 1e3 --f-stop 1e9 --source V1 --node out
     rfsim hb circuit.cir --freq 1e6 --node out --harmonics 8
     rfsim hb circuit.cir --freq 1e6 --cascade

   DC, transient and HB results are certified a posteriori (independent
   re-evaluation of the residuals; see Solve.Certify) unless --no-certify
   is given; --certify-scale multiplies every certification threshold.
   --cascade runs HB through the full PSS fallback chain
   (hb -> hb-gmres -> shooting -> tran-fft) and prints the escalation
   trace.

   Exit codes: 0 success; 1 usage or deck parse error; 2 lint fatal;
   3 convergence failure (the attempt ladder is printed on stderr);
   4 certification failure (the analysis converged but its result failed
   the a-posteriori checks; the certificate is printed on stdout);
   5 interrupted (SIGINT/SIGTERM — sweeps flush a partial report and
   leave a resumable journal; see --resume); 6 the client gave up (server
   unavailable or overloaded past the retry budget); 7 spec not met
   (rfsim optimize finished but its best point fails the --spec clauses);
   66 is reserved for the --inject-crash-after testing hook (simulated
   hard crash).

   Closed-loop design optimization (see Rfkit.Opt):

     rfsim optimize lowpass.cir --var R1=50:10k:50 --var C2=5p:500p:5p \
       --analysis ac --spec 'gain_db@1e4>=-1' --spec 'stopband@1e7..1e8>=30'

   drives the deck's .param bindings with a gradient-free optimizer
   (Nelder-Mead or compass pattern search); every candidate is an
   ordinary cached sweep job, so revisited points are free, warm reruns
   are nearly all cache hits, and the run journal makes a killed
   optimization resumable. The per-eval trace on stdout is byte-identical
   regardless of cache warmth. `rfsim sweep --measure gain_db@1meg,bw3db`
   appends the same measure catalogue as a CSV trend table.

   The daemon pair:

     rfsim serve --socket rfsim.sock --jobs 4 --cache-dir .rfsim-cache
     rfsim client sweep circuit.cir --socket rfsim.sock --param R1=1k:10k:log:8
     rfsim client status --socket rfsim.sock

   serve executes submitted sweeps on a shared domain pool with one warm
   cache; every run journals under the same hash `rfsim sweep` uses, so
   kill -9 mid-sweep + restart + client retry resumes byte-identically. *)

open Rfkit
open Circuit
open Cmdliner

let exit_parse = 1
let exit_lint = 2
let exit_no_convergence = 3
let exit_certify = 4
let exit_interrupted = 5
let exit_unavailable = 6
let exit_spec = 7

(* Single-run analyses: a SIGINT/SIGTERM flips one atomic; the engine's
   next Guard.check poll raises, the supervisor converts it into a typed
   Interrupted failure, and die_failure exits 5 — instead of the process
   dying mid-write on a bare signal. *)
let install_single_run_signals () =
  let handle _ = Solve.Deadline.request_interrupt () in
  try
    Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
  with Invalid_argument _ | Sys_error _ -> ()

(* --stats flag state lives up here so die_failure can emit a final
   stats line on an interrupted run (the supervisor report that would
   normally carry the counters never materializes) *)
let stats_enabled = ref false

(* on a supervised failure: print the full attempt ladder; exit 5 when
   the cause was an interrupt, 3 otherwise *)
let die_failure (f : Solve.Supervisor.failure) =
  Printf.eprintf "%s\n" (Solve.Supervisor.failure_to_string f);
  match f.Solve.Supervisor.cause with
  | Solve.Supervisor.Interrupted ->
      if !stats_enabled then
        Printf.eprintf "stats: interrupted engine=%s attempts=%d\n"
          f.Solve.Supervisor.f_engine
          (List.length f.Solve.Supervisor.f_attempts);
      exit exit_interrupted
  | _ -> exit exit_no_convergence

(* note non-first-rung recoveries so deck problems stay visible *)
let note_recovery (r : Solve.Supervisor.report) =
  match r.Solve.Supervisor.strategy with
  | Solve.Supervisor.Base -> ()
  | s ->
      Printf.eprintf "note: %s converged via %s after %d attempts\n"
        r.Solve.Supervisor.engine
        (Solve.Supervisor.strategy_name s)
        (List.length r.Solve.Supervisor.attempts)

(* testing hook: force the first N linear solves of an engine to report a
   singular Jacobian so the retry ladder (and exit codes) can be exercised
   from the command line *)
let arm_injection ~engine n =
  if n > 0 then
    Solve.Faults.arm
      { Solve.Faults.none with engine = Some engine; singular_attempts = n }

(* certification settings shared by the dc/tran/hb commands: how the
   caller asked the a-posteriori verdicts to be handled *)
type certify_mode = { enabled : bool; tol_scale : float }

(* print the certificate; a Suspect verdict is a distinct exit code so
   scripted flows can tell "converged but not trustworthy" from "diverged" *)
let emit_certificate cert =
  print_endline (Solve.Certify.certificate_to_string cert);
  if not (Solve.Certify.is_certified cert) then exit exit_certify

let certify_when mode make_cert = if mode.enabled then emit_certificate (make_cert ())

(* --stats: one observability line per analysis on stderr, off by default.
   The nnz/density/bytes figures come from the cached MNA sparsity pattern
   (state-independent), the iteration counts from the supervisor report of
   the attempt that converged, and the lu_* counters from the sparse-LU
   factorization ledger: lu_full counts fresh symbolic analyses, lu_refactor
   counts Gilbert-Peierls numeric replays of a frozen pattern. *)
let set_stats flag =
  stats_enabled := flag;
  La.Sparse_lu.reset_counts ();
  La.Csparse_lu.reset_counts ()

let emit_stats ~analysis c (st : Solve.Supervisor.stats) =
  if !stats_enabled then begin
    let n = Mna.size c in
    let x = La.Vec.create n in
    let g = Mna.jac_g_sparse c x and cm = Mna.jac_c_sparse c x in
    let lu_refactor, lu_full = La.Sparse_lu.counts () in
    let clu_refactor, clu_full = La.Csparse_lu.counts () in
    Printf.eprintf
      "stats: %s unknowns=%d nnz(G)=%d nnz(C)=%d density(G)=%.4f \
matrix_bytes=%d newton=%d gmres=%d lu_full=%d lu_refactor=%d fill_nnz=%d \
clu_full=%d clu_refactor=%d clu_fill_nnz=%d ordering=%s\n"
      analysis n (La.Sparse.nnz g) (La.Sparse.nnz cm) (La.Sparse.density g)
      (La.Sparse.memory_bytes g + La.Sparse.memory_bytes cm)
      st.Solve.Supervisor.iterations st.Solve.Supervisor.krylov_iterations
      lu_full lu_refactor
      (La.Sparse_lu.fill_nnz ())
      clu_full clu_refactor
      (La.Csparse_lu.fill_nnz ())
      (Struct.Order.mode_to_string (Mna.ordering c))
  end

let load_located path =
  try Deck.parse_file_located path with
  | Deck.Parse_error (line, msg) ->
      Printf.eprintf "%s:%d: %s\n" path line msg;
      exit exit_parse
  | Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit exit_parse

(* Pre-flight: refuse to hand a structurally broken deck to the solvers.
   Warnings and hints are printed but do not block the run. *)
let load ?(no_lint = false) path =
  let nl, located = load_located path in
  if not no_lint then begin
    let ds = Lint.run nl located in
    let text, fatal = Lint.report ~path ds in
    if ds <> [] then Printf.eprintf "%s\n" text;
    if fatal then begin
      Printf.eprintf
        "%s: %s; refusing to run (use --no-lint to override)\n" path (Lint.summary ds);
      exit exit_lint
    end
  end;
  (nl, List.map snd located)

let print_nodes nl =
  let names = List.init (Netlist.node_count nl) (Netlist.node_name nl) in
  String.concat ", " names

let run_dc ?(certify = { enabled = true; tol_scale = 1.0 }) c =
  let x =
    match Dc.solve_outcome c with
    | Solve.Supervisor.Converged (x, report) ->
        note_recovery report;
        emit_stats ~analysis:"dc" c report.Solve.Supervisor.stats;
        x
    | Solve.Supervisor.Failed f -> die_failure f
  in
  Printf.printf "DC operating point:\n";
  let nl = Mna.netlist c in
  for i = 0 to Netlist.node_count nl - 1 do
    Printf.printf "  v(%s) = %.9g V\n" (Netlist.node_name nl i) x.(i)
  done;
  certify_when certify (fun () -> Dc.certify ~tol_scale:certify.tol_scale c x)

let run_tran ?(certify = { enabled = true; tol_scale = 1.0 }) c ~t_stop ~dt ~nodes =
  let res =
    match Tran.run_outcome c ~t_stop ~dt with
    | Solve.Supervisor.Converged (res, report) ->
        note_recovery report;
        emit_stats ~analysis:"tran" c report.Solve.Supervisor.stats;
        res
    | Solve.Supervisor.Failed f -> die_failure f
  in
  certify_when certify (fun () -> Tran.certify ~tol_scale:certify.tol_scale c res);
  let n = Array.length res.Tran.times in
  Printf.printf "time";
  List.iter (Printf.printf ",v(%s)") nodes;
  print_newline ();
  let cols = List.map (fun node -> Tran.voltage_trace c res node) nodes in
  let stride = max 1 (n / 200) in
  for k = 0 to n - 1 do
    if k mod stride = 0 then begin
      Printf.printf "%.6e" res.Tran.times.(k);
      List.iter (fun col -> Printf.printf ",%.6e" col.(k)) cols;
      print_newline ()
    end
  done

let run_ac c ~f_start ~f_stop ~source ~node =
  let freqs = Ac.log_freqs ~f_start ~f_stop ~points_per_decade:10 in
  match Ac.sweep_outcome c ~source ~freqs with
  | Solve.Supervisor.Failed f -> die_failure f
  | Solve.Supervisor.Converged (res, _) ->
      let h = Ac.transfer c res node in
      Printf.printf "freq,mag_db,phase_deg\n";
      Array.iteri
        (fun i z ->
          Printf.printf "%.6e,%.3f,%.2f\n" freqs.(i)
            (La.Stats.db20 (La.Cx.abs z))
            (La.Cx.arg z *. 180.0 /. Float.pi))
        h

let run_noise c ~f_start ~f_stop ~node =
  let freqs = Ac.log_freqs ~f_start ~f_stop ~points_per_decade:10 in
  match Ac.output_noise_outcome c ~node ~freqs with
  | Solve.Supervisor.Failed f -> die_failure f
  | Solve.Supervisor.Converged (psd, _) ->
      Printf.printf "freq,vnoise_psd,vnoise_per_rthz\n";
      Array.iteri
        (fun i s -> Printf.printf "%.6e,%.6e,%.6e\n" freqs.(i) s (sqrt s))
        psd

let print_harmonics ~freq ~harmonics amplitude =
  Printf.printf "harmonic,freq,amplitude\n";
  for k = 0 to harmonics do
    Printf.printf "%d,%.6e,%.6e\n" k (float_of_int k *. freq) (amplitude k)
  done

let run_hb ?(certify = { enabled = true; tol_scale = 1.0 })
    ?(solver = Rf.Hb.Direct) c ~freq ~node ~harmonics =
  let res =
    match
      Rf.Hb.solve_outcome
        ~options:
          {
            Rf.Hb.default_options with
            n_samples = La.Fft.next_pow2 (4 * harmonics);
            solver;
          }
        c ~freq
    with
    | Solve.Supervisor.Converged (res, report) ->
        note_recovery report;
        emit_stats ~analysis:"hb" c report.Solve.Supervisor.stats;
        res
    | Solve.Supervisor.Failed f -> die_failure f
  in
  Printf.printf "harmonic balance at %.6g Hz (%d Newton iterations):\n" freq
    res.Rf.Hb.newton_iters;
  certify_when certify (fun () ->
      Rf.Pss.certify ~tol_scale:certify.tol_scale (Rf.Pss.of_hb res));
  print_harmonics ~freq ~harmonics (Rf.Hb.harmonic_amplitude res node)

(* --cascade: the engine-agnostic PSS chain. The escalation trace goes to
   stdout (it is part of the result: which route produced the answer),
   rendered without timings so repeated runs are byte-identical. *)
let run_hb_cascade ?(certify = { enabled = true; tol_scale = 1.0 }) c ~freq ~node
    ~harmonics =
  let n_samples = La.Fft.next_pow2 (4 * harmonics) in
  match Rf.Pss.solve_outcome ~chain:(Rf.Pss.default_chain ~n_samples ()) c ~freq with
  | Solve.Cascade.Completed (sol, report) ->
      print_endline (Solve.Cascade.report_to_string report);
      certify_when certify (fun () ->
          Rf.Pss.certify ~tol_scale:certify.tol_scale sol);
      print_harmonics ~freq ~harmonics (Rf.Pss.harmonic_amplitude sol node)
  | Solve.Cascade.Exhausted f ->
      Printf.eprintf "%s\n" (Solve.Cascade.failure_to_string f);
      (match f.Solve.Cascade.x_cause with
      | Solve.Supervisor.Interrupted -> exit exit_interrupted
      | _ -> exit exit_no_convergence)

(* ---------------------------------------------------------------- CLI -- *)

let deck_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DECK" ~doc:"Netlist deck file.")

let node_arg default =
  Arg.(value & opt string default & info [ "node" ] ~docv:"NODE" ~doc:"Output node.")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ] ~doc:"Skip the pre-flight static netlist analyzer.")

let inject_singular_arg =
  Arg.(
    value & opt int 0
    & info [ "inject-singular" ] ~docv:"N"
        ~doc:
          "Testing hook: report a singular Jacobian on the first $(docv) \
           solver attempts, forcing the supervisor down its retry ladder.")

let no_certify_arg =
  Arg.(
    value & flag
    & info [ "no-certify" ]
        ~doc:"Skip the a-posteriori result certification (Solve.Certify).")

let certify_scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "certify-scale" ] ~docv:"S"
        ~doc:
          "Multiply every certification threshold by $(docv); a tiny value \
           forces a Suspect verdict (exit 4) on any real result, a large \
           one waves marginal results through.")

let certify_mode no_certify scale = { enabled = not no_certify; tol_scale = scale }

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print one observability line per analysis on stderr: unknown \
           count, stamped-matrix nnz/density/bytes, and Newton/GMRES \
           iteration counts.")

let ordering_arg =
  let mode_conv =
    Arg.enum
      [
        ("natural", Struct.Order.Natural);
        ("amd", Struct.Order.Amd_only);
        ("btf-amd", Struct.Order.Btf_amd);
      ]
  in
  Arg.(
    value & opt mode_conv Struct.Order.Natural
    & info [ "ordering" ] ~docv:"MODE"
        ~doc:
          "Fill-reducing ordering for the sparse LU: $(b,natural) (deck \
           order), $(b,amd) (minimum degree on the symmetrized pattern), or \
           $(b,btf-amd) (block-triangular form with AMD inside each diagonal \
           block). Partial pivoting keeps the factorization exact either \
           way; only fill-in changes.")

let cascade_arg =
  Arg.(
    value & flag
    & info [ "cascade" ]
        ~doc:
          "Run the engine-agnostic PSS cascade (hb, hb-gmres, shooting, \
           tran-fft) instead of bare HB: each engine exhausts its retry \
           ladder before the chain escalates, and the escalation trace is \
           printed with the result.")

let lint_cmd =
  let doc = "statically analyze a deck without running it (RF DRC)" in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON-lines output.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as errors.")
  in
  let run path json strict =
    let nl, located = load_located path in
    let ds = Lint.run nl located in
    if json then begin
      if ds <> [] then print_endline (Lint.report_json ~path ds)
    end
    else begin
      let text, _ = Lint.report ~path ds in
      if ds <> [] then print_endline text;
      Printf.printf "%s: %s\n" path (Lint.summary ds)
    end;
    let _, fatal = Lint.report ~path ~strict ds in
    if fatal then exit exit_lint
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run $ deck_arg $ json $ strict)

(* rfsim analyze: the structural pre-analysis as a first-class report.
   Parses and compiles the deck but never factors real values: everything
   here is decided by the sparsity pattern alone (the fill probe factors a
   synthetic nonsingular value assignment on the exact engine pattern).
   Exit 2 when the pattern proves the system singular (L021/L022). *)
let analyze_cmd =
  let doc = "structural pre-analysis: DM rank, BTF blocks, ordering fill-in" in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON-lines output.")
  in
  let run path json =
    let nl, _ = load_located path in
    let c = Mna.build nl in
    let n = Mna.size c in
    let sg = Mna.structural_g c
    and sc = Mna.structural_c c
    and su = Mna.structural_gc c in
    let rank_g = Mna.structural_rank_g c
    and rank_u = Mna.structural_rank_gc c in
    (* the pattern the engines actually factor: union + forced diagonal,
       filled with a deterministic nonsingular value assignment so the
       measured fill is that of a real (pivoted) factorization *)
    let x0 = La.Vec.create n in
    let factored = La.Sparse.add (Mna.jac_g_sparse c x0) (Mna.jac_c_sparse c x0) in
    let rp, ci, _ = La.Sparse.csr factored in
    let vals = Array.make (Array.length ci) 0.0 in
    for i = 0 to n - 1 do
      for k = rp.(i) to rp.(i + 1) - 1 do
        vals.(k) <-
          1.0 +. (0.01 *. float_of_int (((i * 31) + (ci.(k) * 17)) mod 97))
      done
    done;
    let probe =
      La.Sparse.of_csr ~rows:n ~cols:n ~row_ptr:rp ~col_idx:ci ~values:vals
    in
    let blocks = (Struct.Order.compute_info Struct.Order.Btf_amd probe).Struct.Order.blocks in
    let fill mode =
      if rank_u < n then None
      else
        let perm = Struct.Order.compute mode probe in
        match La.Sparse_lu.factor ?perm probe with
        | _ -> Some (La.Sparse_lu.fill_nnz ())
        | exception _ -> None
    in
    let fills =
      List.map
        (fun (name, m) -> (name, fill m))
        [
          ("natural", Struct.Order.Natural);
          ("amd", Struct.Order.Amd_only);
          ("btf-amd", Struct.Order.Btf_amd);
        ]
    in
    let ds =
      Lint.Diagnostic.sort
        (Lint.Checks.structural_singularity nl @ Lint.Checks.dae_index nl)
    in
    if json then begin
      let fill_json =
        String.concat ","
          (List.map
             (fun (name, f) ->
               Printf.sprintf "%S:%s"
                 name
                 (match f with Some v -> string_of_int v | None -> "null"))
             fills)
      in
      Printf.printf
        "{\"analysis\":\"structure\",\"path\":%S,\"unknowns\":%d,\
         \"nnz_g\":%d,\"nnz_c\":%d,\"nnz_union\":%d,\"nnz_factored\":%d,\
         \"rank_g\":%d,\"rank_union\":%d,\"structurally_singular\":%b,\
         \"btf_blocks\":[%s],\"fill\":{%s}}\n"
        path n (La.Sparse.nnz sg) (La.Sparse.nnz sc) (La.Sparse.nnz su)
        (La.Sparse.nnz probe) rank_g rank_u (rank_g < n)
        (String.concat "," (List.map string_of_int blocks))
        fill_json;
      List.iter (fun d -> print_endline (Lint.Diagnostic.to_json ~path d)) ds
    end
    else begin
      Printf.printf "structural analysis: %s\n" path;
      Printf.printf "  unknowns         %d\n" n;
      Printf.printf "  nnz              G %d   C %d   G+C %d   factored %d\n"
        (La.Sparse.nnz sg) (La.Sparse.nnz sc) (La.Sparse.nnz su)
        (La.Sparse.nnz probe);
      Printf.printf "  structural rank  G %d/%d   G+C %d/%d%s\n" rank_g n rank_u
        n
        (if rank_g < n then "   STRUCTURALLY SINGULAR" else "");
      (if blocks <> [] then
         let largest = List.fold_left max 0 blocks in
         Printf.printf "  btf blocks       %d (largest %d)\n"
           (List.length blocks) largest);
      Printf.printf "  fill nnz(L+U)    %s\n"
        (String.concat "   "
           (List.map
              (fun (name, f) ->
                Printf.sprintf "%s %s" name
                  (match f with Some v -> string_of_int v | None -> "-"))
              fills));
      List.iter (fun d -> print_endline (Lint.Diagnostic.to_string ~path d)) ds;
      Printf.printf "structure: %s\n"
        (if ds = [] then "clean" else Lint.summary ds)
    end;
    if Lint.Diagnostic.has_errors ds then exit exit_lint
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ deck_arg $ json)

let dc_cmd =
  let doc = "DC operating point" in
  let run path no_lint inject no_certify scale stats ordering =
    install_single_run_signals ();
    let nl, _ = load ~no_lint path in
    arm_injection ~engine:"dc" inject;
    set_stats stats;
    let c = Mna.build nl in
    Mna.set_ordering c ordering;
    run_dc ~certify:(certify_mode no_certify scale) c
  in
  Cmd.v (Cmd.info "dc" ~doc)
    Term.(
      const run $ deck_arg $ no_lint_arg $ inject_singular_arg $ no_certify_arg
      $ certify_scale_arg $ stats_arg $ ordering_arg)

let tran_cmd =
  let doc = "transient analysis (CSV on stdout)" in
  let t_stop = Arg.(value & opt float 1e-6 & info [ "t-stop" ] ~doc:"Stop time (s).") in
  let dt = Arg.(value & opt float 1e-9 & info [ "dt" ] ~doc:"Time step (s).") in
  let run path no_lint t_stop dt node no_certify scale stats ordering =
    install_single_run_signals ();
    let nl, _ = load ~no_lint path in
    set_stats stats;
    let c = Mna.build nl in
    Mna.set_ordering c ordering;
    run_tran ~certify:(certify_mode no_certify scale) c ~t_stop ~dt
      ~nodes:[ node ]
  in
  Cmd.v (Cmd.info "tran" ~doc)
    Term.(
      const run $ deck_arg $ no_lint_arg $ t_stop $ dt $ node_arg "out"
      $ no_certify_arg $ certify_scale_arg $ stats_arg $ ordering_arg)

let ac_cmd =
  let doc = "AC small-signal sweep (CSV on stdout)" in
  let f_start = Arg.(value & opt float 1e3 & info [ "f-start" ] ~doc:"Start frequency.") in
  let f_stop = Arg.(value & opt float 1e9 & info [ "f-stop" ] ~doc:"Stop frequency.") in
  let source = Arg.(value & opt string "V1" & info [ "source" ] ~doc:"Driving source name.") in
  let run path no_lint f_start f_stop source node stats ordering =
    install_single_run_signals ();
    let nl, _ = load ~no_lint path in
    set_stats stats;
    let c = Mna.build nl in
    Mna.set_ordering c ordering;
    run_ac c ~f_start ~f_stop ~source ~node;
    (* AC is a direct linearized solve: no Newton/Krylov counters *)
    emit_stats ~analysis:"ac" c Solve.Supervisor.no_stats
  in
  Cmd.v (Cmd.info "ac" ~doc)
    Term.(
      const run $ deck_arg $ no_lint_arg $ f_start $ f_stop $ source $ node_arg "out"
      $ stats_arg $ ordering_arg)

let noise_cmd =
  let doc = "output-noise PSD sweep (CSV on stdout)" in
  let f_start = Arg.(value & opt float 1e3 & info [ "f-start" ] ~doc:"Start frequency.") in
  let f_stop = Arg.(value & opt float 1e9 & info [ "f-stop" ] ~doc:"Stop frequency.") in
  let run path no_lint f_start f_stop node stats ordering =
    install_single_run_signals ();
    let nl, _ = load ~no_lint path in
    set_stats stats;
    let c = Mna.build nl in
    Mna.set_ordering c ordering;
    run_noise c ~f_start ~f_stop ~node;
    (* noise is a chain of direct linearized solves: no Newton/Krylov *)
    emit_stats ~analysis:"noise" c Solve.Supervisor.no_stats
  in
  Cmd.v (Cmd.info "noise" ~doc)
    Term.(
      const run $ deck_arg $ no_lint_arg $ f_start $ f_stop $ node_arg "out"
      $ stats_arg $ ordering_arg)

let hb_cmd =
  let doc = "harmonic-balance periodic steady state" in
  let freq = Arg.(value & opt float 1e6 & info [ "freq" ] ~doc:"Fundamental frequency.") in
  let harmonics = Arg.(value & opt int 8 & info [ "harmonics" ] ~doc:"Harmonics to report.") in
  let solver =
    let solver_conv =
      Arg.enum [ ("direct", Rf.Hb.Direct); ("gmres", Rf.Hb.Matrix_free_gmres) ]
    in
    Arg.(
      value & opt solver_conv Rf.Hb.Direct
      & info [ "solver" ] ~docv:"SOLVER"
          ~doc:
            "Inner linear solver for the HB Newton steps: $(b,direct) \
             (dense flattened Jacobian) or $(b,gmres) (matrix-free with the \
             per-harmonic complex-sparse block preconditioner).")
  in
  let run path no_lint freq harmonics node inject cascade no_certify scale stats
      ordering solver =
    install_single_run_signals ();
    let nl, _ = load ~no_lint path in
    arm_injection ~engine:"hb" inject;
    set_stats stats;
    let certify = certify_mode no_certify scale in
    let c = Mna.build nl in
    Mna.set_ordering c ordering;
    if cascade then run_hb_cascade ~certify c ~freq ~node ~harmonics
    else run_hb ~certify ~solver c ~freq ~node ~harmonics
  in
  Cmd.v (Cmd.info "hb" ~doc)
    Term.(
      const run $ deck_arg $ no_lint_arg $ freq $ harmonics $ node_arg "out"
      $ inject_singular_arg $ cascade_arg $ no_certify_arg $ certify_scale_arg
      $ stats_arg $ ordering_arg $ solver)

let shooting_cmd =
  let doc = "shooting-method periodic steady state" in
  let freq = Arg.(value & opt float 1e6 & info [ "freq" ] ~doc:"Fundamental frequency.") in
  let steps =
    Arg.(value & opt int 128 & info [ "steps" ] ~doc:"Integration steps per period.")
  in
  let harmonics = Arg.(value & opt int 8 & info [ "harmonics" ] ~doc:"Harmonics to report.") in
  let run path no_lint freq steps harmonics node inject no_certify scale stats =
    install_single_run_signals ();
    let nl, _ = load ~no_lint path in
    arm_injection ~engine:"shooting" inject;
    set_stats stats;
    let certify = certify_mode no_certify scale in
    let c = Mna.build nl in
    let options = { Rf.Shooting.default_options with steps_per_period = steps } in
    match Rf.Shooting.solve_outcome ~options c ~freq with
    | Solve.Supervisor.Converged (res, report) ->
        note_recovery report;
        emit_stats ~analysis:"shooting" c report.Solve.Supervisor.stats;
        Printf.printf "shooting at %.6g Hz (%d Newton iterations, %d steps):\n" freq
          res.Rf.Shooting.newton_iters res.Rf.Shooting.integration_steps;
        let sol = Rf.Pss.of_shooting res in
        certify_when certify (fun () -> Rf.Pss.certify ~tol_scale:certify.tol_scale sol);
        print_harmonics ~freq ~harmonics (Rf.Pss.harmonic_amplitude sol node)
    | Solve.Supervisor.Failed f -> die_failure f
  in
  Cmd.v (Cmd.info "shooting" ~doc)
    Term.(
      const run $ deck_arg $ no_lint_arg $ freq $ steps $ harmonics $ node_arg "out"
      $ inject_singular_arg $ no_certify_arg $ certify_scale_arg $ stats_arg)

let mmft_cmd =
  let doc = "mixed frequency-time quasi-periodic steady state" in
  let f1 = Arg.(value & opt float 1e3 & info [ "f1" ] ~doc:"Slow fundamental (Hz).") in
  let f2 = Arg.(value & opt float 1e6 & info [ "f2" ] ~doc:"Fast fundamental (Hz).") in
  let k =
    Arg.(
      value & opt int 3
      & info [ "slow-harmonics" ] ~doc:"Slow-axis Fourier order K (2K+1 phases).")
  in
  let run path no_lint f1 f2 k node stats =
    install_single_run_signals ();
    let nl, _ = load ~no_lint path in
    set_stats stats;
    let c = Mna.build nl in
    let options = { Rf.Mmft.default_options with slow_harmonics = k } in
    match Rf.Mmft.solve_outcome ~options c ~f1 ~f2 with
    | Solve.Supervisor.Converged (res, report) ->
        note_recovery report;
        emit_stats ~analysis:"mmft" c report.Solve.Supervisor.stats;
        Printf.printf "mmft at f1=%.6g Hz, f2=%.6g Hz (%d Newton iterations, %d steps):\n"
          f1 f2 res.Rf.Mmft.newton_iters res.Rf.Mmft.integration_steps;
        Printf.printf "slow_harmonic,envelope_max\n";
        for j = 0 to k do
          let env = Rf.Mmft.harmonic_magnitude res node j in
          let m = Array.fold_left max 0.0 env in
          Printf.printf "%d,%.6e\n" j m
        done
    | Solve.Supervisor.Failed f -> die_failure f
  in
  Cmd.v (Cmd.info "mmft" ~doc)
    Term.(
      const run $ deck_arg $ no_lint_arg $ f1 $ f2 $ k $ node_arg "out" $ stats_arg)

(* ------------------------------------------------------------- sweep -- *)

(* Sweep-spec arguments shared verbatim between `rfsim sweep` (offline)
   and `rfsim client sweep` (via the service): same flags, same defaults,
   so a sweep moved between the two modes keeps its identity — and its
   run hash, which is what lets the journal resume across them. *)
let param_args =
  Arg.(
    value & opt_all string []
    & info [ "param" ] ~docv:"AXIS"
        ~doc:
          "Sweep axis: $(i,NAME=value), $(i,NAME=v1,v2,...), or \
           $(i,NAME=lo:hi:lin|log:n). Repeatable; axes multiply.")

let corner_args =
  Arg.(
    value & opt_all string []
    & info [ "corner" ] ~docv:"CORNER"
        ~doc:"Named corner $(i,NAME:P1=v1,P2=v2,...). Repeatable.")

let analysis_arg =
  Arg.(
    value & opt string "dc"
    & info [ "analysis" ] ~docv:"LIST"
        ~doc:"Comma-separated analyses: dc, ac, tran, hb, shooting.")

let freq_arg = Arg.(value & opt (some float) None & info [ "freq" ] ~doc:"hb/shooting fundamental; default: first periodic source.")
let harmonics_arg = Arg.(value & opt int 8 & info [ "harmonics" ] ~doc:"hb harmonics.")
let steps_arg = Arg.(value & opt int 128 & info [ "steps" ] ~doc:"shooting steps per period.")
let t_stop_arg = Arg.(value & opt float 1e-6 & info [ "t-stop" ] ~doc:"tran stop time (s).")
let dt_arg = Arg.(value & opt float 1e-9 & info [ "dt" ] ~doc:"tran time step (s).")
let f_start_arg = Arg.(value & opt float 1e3 & info [ "f-start" ] ~doc:"ac start frequency.")
let f_stop_arg = Arg.(value & opt float 1e9 & info [ "f-stop" ] ~doc:"ac stop frequency.")
let ppd_arg = Arg.(value & opt int 10 & info [ "points-per-decade" ] ~doc:"ac frequency resolution.")

let make_defaults ~freq ~harmonics ~steps ~t_stop ~dt ~f_start ~f_stop ~ppd =
  {
    Batch.Spec.d_f_start = f_start;
    d_f_stop = f_stop;
    d_points_per_decade = ppd;
    d_t_stop = t_stop;
    d_dt = dt;
    d_freq = freq;
    d_harmonics = harmonics;
    d_steps = steps;
  }

let cache_dir_arg =
  Arg.(
    value & opt string ".rfsim-cache"
    & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory.")

let no_cache_arg =
  Arg.(value & flag & info [ "no-cache" ] ~doc:"Bypass the result cache entirely.")

let telemetry_arg =
  Arg.(
    value & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:"Write per-job telemetry events (with timings) as JSONL.")

let job_iters_arg =
  Arg.(
    value & opt (some int) None
    & info [ "job-iters" ] ~docv:"N"
        ~doc:"Total Newton/step iteration budget per job.")

let job_wall_arg =
  Arg.(
    value & opt (some float) None
    & info [ "job-wall" ] ~docv:"SECONDS" ~doc:"Wall-clock budget per job.")

let budget_of job_iters job_wall =
  match (job_iters, job_wall) with
  | None, None -> None
  | _ ->
      let d = Solve.Supervisor.default_budget in
      let total =
        Option.value job_iters ~default:d.Solve.Supervisor.total_iterations
      in
      (* the per-attempt cap must scale with the total: step-count-based
         engines (tran) spend all their iterations in one attempt, and a
         stale 400-iteration attempt cap would kill any long job the
         moment --job-iters is passed *)
      Some
        {
          Solve.Supervisor.attempt_iterations =
            max total d.Solve.Supervisor.attempt_iterations;
          total_iterations = total;
          wall_clock = Option.value job_wall ~default:d.Solve.Supervisor.wall_clock;
        }

let job_deadline_arg =
  Arg.(
    value & opt (some float) None
    & info [ "job-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Per-job wall-clock deadline: a job past it is quarantined as a \
           typed deadline-exceeded failure instead of wedging its worker \
           domain.")

let grace_arg =
  Arg.(
    value & opt float 2.0
    & info [ "grace" ] ~docv:"SECONDS"
        ~doc:
          "Drain budget after SIGINT/SIGTERM: in-flight jobs get this \
           long to finish before being killed and left for --resume.")

let sweep_cmd =
  let doc = "parameter sweep: expand, run in parallel, cache, report JSONL" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Expands the cartesian product of $(b,--corner) sets, $(b,--param) \
         value axes and the $(b,--analysis) list into jobs, runs them across \
         $(b,--jobs) domains, and prints one JSON line per job on stdout in \
         job order. The report carries no wall-clock fields: runs with \
         different $(b,--jobs) values are byte-identical. Results are \
         memoized in a content-addressed cache keyed on the deck text, the \
         parameter bindings and the engine options; telemetry (with \
         timings) goes to $(b,--telemetry) as JSONL.";
    ]
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains (parallel jobs).")
  in
  let resume_arg =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"DIR"
          ~doc:
            "Resume an interrupted or crashed sweep from the run journal in \
             cache directory $(docv) (implies $(b,--cache-dir) $(docv)): \
             journaled jobs are replayed without re-execution, pending ones \
             run, and the final report is byte-identical to an \
             uninterrupted run.")
  in
  let cache_max_bytes_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cache-max-bytes" ] ~docv:"BYTES"
          ~doc:"Evict least-recently-used cache entries past this size after \
                the sweep (journal-referenced entries are never evicted).")
  in
  let cache_max_entries_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cache-max-entries" ] ~docv:"N"
          ~doc:"Evict least-recently-used cache entries past this count \
                after the sweep.")
  in
  let inject_crash_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-crash-after" ] ~docv:"N"
          ~doc:
            "Testing hook: hard-kill the process (exit 66, no cleanup) once \
             $(docv) jobs have completed — the journal must make the run \
             resumable.")
  in
  let inject_interrupt_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-interrupt-after" ] ~docv:"N"
          ~doc:
            "Testing hook: simulate SIGINT delivery once $(docv) jobs have \
             completed, exercising the graceful drain deterministically.")
  in
  let inject_stall_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-stall" ] ~docv:"JOB"
          ~doc:
            "Testing hook: wedge job $(docv) in a busy loop so \
             --job-deadline (or the drain clamp) must quarantine it.")
  in
  let measure_args =
    Arg.(
      value & opt_all string []
      & info [ "measure" ] ~docv:"LIST"
          ~doc:
            "Append a CSV trend table after the JSONL report: one row per \
             job, one column per measure (comma-separated, repeatable), \
             e.g. $(i,gain_db\\@1meg,bw3db,stopband\\@2meg..10meg). \
             Unevaluable cells (failed job, wrong analysis, off-grid \
             target) are left empty.")
  in
  let run path params corners analyses jobs node freq harmonics steps t_stop dt
      f_start f_stop ppd cache_dir no_cache telemetry_path job_iters job_wall
      no_lint ordering stats resume job_deadline grace cache_max_bytes
      cache_max_entries inject_crash inject_interrupt inject_stall measures =
    let deck_text =
      try
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        text
      with Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit exit_parse
    in
    let spec =
      try
        let axes = List.map Batch.Spec.parse_axis params in
        let corners = List.map Batch.Spec.parse_corner corners in
        let defaults =
          make_defaults ~freq ~harmonics ~steps ~t_stop ~dt ~f_start ~f_stop
            ~ppd
        in
        let analyses = Batch.Spec.parse_analyses defaults analyses in
        (axes, corners, analyses)
      with Batch.Spec.Spec_error msg ->
        Printf.eprintf "sweep: %s\n" msg;
        exit exit_parse
    in
    let axes, corners, analyses = spec in
    (* measures parse before any numerics run: a typo'd label must not
       cost a sweep *)
    let measure_list =
      try
        List.concat_map
          (fun s ->
            List.filter_map
              (fun t ->
                if String.trim t = "" then None else Some (Opt.Measure.parse t))
              (String.split_on_char ',' s))
          measures
      with Opt.Measure.Parse_error msg ->
        Printf.eprintf "sweep: %s\n" msg;
        exit exit_parse
    in
    (* pre-flight lint of the first sweep point: swept parameters may have
       no .param default in the deck, so the nominal parse needs them *)
    if not no_lint then begin
      let overrides =
        List.map
          (fun (a : Batch.Spec.axis) -> (a.Batch.Spec.a_name, a.Batch.Spec.a_values.(0)))
          axes
      in
      match Deck.parse_string_located ~overrides deck_text with
      | exception Deck.Parse_error (line, msg) ->
          Printf.eprintf "%s:%d: %s\n" path line msg;
          exit exit_parse
      | nl, located ->
          let ds = Lint.run nl located in
          let text, fatal = Lint.report ~path ds in
          if ds <> [] then Printf.eprintf "%s\n" text;
          if fatal then begin
            Printf.eprintf "%s: %s; refusing to sweep (use --no-lint to override)\n"
              path (Lint.summary ds);
            exit exit_lint
          end
    end;
    let job_list = Batch.Expand.expand ~axes ~corners ~analyses in
    let budget = budget_of job_iters job_wall in
    if stats then La.Sparse_lu.reset_counts ();
    (* --resume DIR implies --cache-dir DIR: the journal lives with the
       cache it replays through *)
    let cache_dir = Option.value resume ~default:cache_dir in
    if resume <> None && no_cache then begin
      Printf.eprintf "sweep: --resume needs the cache (drop --no-cache)\n";
      exit exit_parse
    end;
    let cfg =
      {
        Batch.Runner.deck_text;
        node;
        domains = max 1 jobs;
        budget;
        tol_scale = 1.0;
        ordering;
        stats;
        deadline = job_deadline;
        grace;
      }
    in
    (* process-level chaos for recovery tests *)
    (match (inject_crash, inject_interrupt, inject_stall) with
    | None, None, None -> ()
    | crash_after, interrupt_after, stall_job ->
        Solve.Faults.arm_process
          { Solve.Faults.crash_after; interrupt_after; stall_job;
            accept_stall = None });
    (* run identity: the journal is keyed by a hash over every job's
       cache key (deck, params, analysis, engine options) plus the job
       count and the deadline config — anything that can change what the
       journal records. A --resume against a different spec simply finds
       no journal. *)
    let run_hash =
      Batch.Hash.digest
        (String.concat "\n"
           (Printf.sprintf "jobs=%d" (List.length job_list)
           :: Printf.sprintf "deadline=%s"
                (match job_deadline with
                | None -> "none"
                | Some s -> Printf.sprintf "%.9g" s)
           :: List.map (Batch.Runner.job_key cfg) job_list))
    in
    let cache = Batch.Cache.create ~enabled:(not no_cache) ~dir:cache_dir () in
    let telemetry =
      Batch.Telemetry.create ?log_path:telemetry_path ~total:(List.length job_list) ()
    in
    let replay =
      if resume = None then None
      else begin
        let r = Batch.Journal.load ~dir:cache_dir ~run:run_hash in
        if r = None then
          Printf.eprintf
            "sweep: no journal for this spec under %s; running from scratch\n"
            cache_dir;
        r
      end
    in
    let journal =
      if no_cache then None
      else
        Some
          (Batch.Journal.create ~dir:cache_dir ~run:run_hash
             ~total:(List.length job_list))
    in
    (* graceful shutdown: first signal closes the dispatch gate and
       drains under --grace; a second signal force-quits like the shell
       default (128+SIGINT) *)
    let install_sweep_signals () =
      let handle _ =
        if Solve.Deadline.interrupt_requested () then Unix._exit 130
        else Batch.Runner.request_stop ~grace
      in
      try
        Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ()
    in
    install_sweep_signals ();
    let outcome = Batch.Runner.run cfg ~cache ~telemetry ?journal ?replay job_list in
    let results = outcome.Batch.Runner.results in
    (* the journal doubles as the in-progress marker: delete on
       completion, keep (resumable) on interrupt *)
    (match journal with
    | None -> ()
    | Some j ->
        if outcome.Batch.Runner.interrupted then Batch.Journal.close j
        else Batch.Journal.finish_run j);
    (* bounded cache: gc after the run, pinning every key a still-live
       journal references (this run's, if interrupted, and any other
       in-progress run sharing the directory) *)
    (match (cache_max_bytes, cache_max_entries) with
    | None, None -> ()
    | max_bytes, max_entries ->
        let pins = Batch.Journal.referenced_keys ~dir:cache_dir in
        let gs =
          Batch.Cache.gc ~dir:cache_dir ?max_bytes ?max_entries
            ~pinned:(fun k -> Hashtbl.mem pins k)
            ()
        in
        Batch.Telemetry.emit telemetry ~job:(-1) ~event:"cache-gc-evict"
          [
            ("evicted", Batch.Json.int gs.Batch.Cache.gc_evicted);
            ("evicted_bytes", Batch.Json.int gs.Batch.Cache.gc_evicted_bytes);
            ("pinned", Batch.Json.int gs.Batch.Cache.gc_pinned);
          ];
        Printf.eprintf
          "cache gc: examined=%d evicted=%d evicted_bytes=%d pinned=%d \
           entries=%d bytes=%d\n"
          gs.Batch.Cache.gc_examined gs.Batch.Cache.gc_evicted
          gs.Batch.Cache.gc_evicted_bytes gs.Batch.Cache.gc_pinned
          gs.Batch.Cache.gc_entries gs.Batch.Cache.gc_bytes);
    Batch.Telemetry.close telemetry;
    Batch.Report.print_all stdout results;
    (* --measure: deterministic CSV trend table after the report — same
       job order, canonical measure labels as headers, %.9g cells, no
       wall-clock fields, so it diffs clean like the report itself *)
    (match measure_list with
    | [] -> ()
    | ms ->
        let param_names =
          List.sort_uniq compare
            (List.concat_map
               (fun (j : Batch.Expand.job) -> List.map fst j.Batch.Expand.params)
               job_list)
        in
        print_endline
          (String.concat ","
             (("job" :: "corner" :: param_names)
             @ List.map Opt.Measure.to_string ms));
        Array.iter
          (function
            | None -> ()
            | Some (r : Batch.Runner.job_result) ->
                let j = r.Batch.Runner.job in
                let pcell name =
                  match List.assoc_opt name j.Batch.Expand.params with
                  | Some v -> Printf.sprintf "%.9g" v
                  | None -> ""
                in
                let payload = Batch.Json.parse r.Batch.Runner.payload in
                let mcell m =
                  match Option.bind payload (fun p -> Opt.Measure.eval m p) with
                  | Some v -> Printf.sprintf "%.9g" v
                  | None -> ""
                in
                print_endline
                  (String.concat ","
                     ((string_of_int j.Batch.Expand.id
                      :: j.Batch.Expand.corner
                      :: List.map pcell param_names)
                     @ List.map mcell ms)))
          results);
    if outcome.Batch.Runner.interrupted then
      print_endline (Batch.Report.interrupted_marker results);
    Printf.eprintf "%s\n" (Batch.Report.summary results (Batch.Cache.stats cache));
    if outcome.Batch.Runner.interrupted then exit exit_interrupted;
    if not (Batch.Report.all_ok results) then exit exit_no_convergence
  in
  Cmd.v (Cmd.info "sweep" ~doc ~man)
    Term.(
      const run $ deck_arg $ param_args $ corner_args $ analysis_arg $ jobs_arg
      $ node_arg "out" $ freq_arg $ harmonics_arg $ steps_arg $ t_stop_arg
      $ dt_arg $ f_start_arg $ f_stop_arg $ ppd_arg $ cache_dir_arg
      $ no_cache_arg $ telemetry_arg
      $ job_iters_arg $ job_wall_arg $ no_lint_arg $ ordering_arg $ stats_arg
      $ resume_arg $ job_deadline_arg $ grace_arg $ cache_max_bytes_arg
      $ cache_max_entries_arg $ inject_crash_arg $ inject_interrupt_arg
      $ inject_stall_arg $ measure_args)

(* ---------------------------------------------------------- optimize -- *)

let optimize_cmd =
  let doc = "closed-loop design optimization: drive cached sweep jobs to a spec" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Searches the box given by $(b,--var) bindings with a \
         deterministic gradient-free optimizer; every candidate point is \
         one ordinary sweep job ($(b,--analysis)) scored against the \
         $(b,--spec) clauses. Candidates ride the shared result cache \
         (revisited points are free; a warm rerun is nearly all hits) and \
         the run journal ($(b,--resume) continues a killed optimization \
         mid-trajectory). Stdout carries one JSON trace line per eval, a \
         summary, the best point and its per-clause scorecard — all free \
         of wall-clock and cache-provenance fields, so cold and warm runs \
         are byte-identical. Exit 0 when the spec is met, 7 when the best \
         point still fails a clause, 5 on interrupt.";
    ]
  in
  let var_args =
    Arg.(
      value & opt_all string []
      & info [ "var" ] ~docv:"VAR"
          ~doc:
            "Design variable $(i,NAME=LO:HI[:INIT]) bound over a box \
             ($(i,INIT) defaults to the midpoint; deck number grammar). \
             Repeatable.")
  in
  let spec_args =
    Arg.(
      value & opt_all string []
      & info [ "spec" ] ~docv:"CLAUSE"
          ~doc:
            "Spec clause: $(i,minimize:M), $(i,maximize:M), \
             $(i,target:M=V~TOL), $(i,M>=B) or $(i,M<=B), where $(i,M) is \
             a measure such as $(i,gain_db\\@1meg), $(i,bw3db), \
             $(i,ripple\\@1k..100k) or $(i,stopband\\@2meg..10meg). \
             Repeatable; at most one goal clause.")
  in
  let single_analysis_arg =
    Arg.(
      value & opt string "ac"
      & info [ "analysis" ] ~docv:"ANALYSIS"
          ~doc:"Analysis each candidate runs: dc, ac, tran, hb or shooting.")
  in
  let algo_arg =
    Arg.(
      value & opt string "nelder-mead"
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:"Optimizer: $(b,nelder-mead) or $(b,pattern) (compass search).")
  in
  let max_evals_arg =
    Arg.(
      value & opt int 200
      & info [ "max-evals" ] ~docv:"N" ~doc:"Hard evaluation budget.")
  in
  let tol_x_arg =
    Arg.(
      value & opt float 1e-3
      & info [ "tol-x" ] ~docv:"REL"
          ~doc:"Relative (to the box width) convergence tolerance.")
  in
  let tol_f_arg =
    Arg.(
      value & opt float 1e-9
      & info [ "tol-f" ] ~docv:"REL"
          ~doc:"Relative objective-spread tolerance (Nelder-Mead).")
  in
  let init_step_arg =
    Arg.(
      value & opt float 0.25
      & info [ "init-step" ] ~docv:"FRAC"
          ~doc:"Initial simplex/pattern step as a fraction of the box.")
  in
  let weight_arg =
    Arg.(
      value & opt float Opt.Spec.default_weight
      & info [ "penalty-weight" ] ~docv:"W"
          ~doc:"Constraint-violation penalty weight.")
  in
  let resume_arg =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"DIR"
          ~doc:
            "Resume a killed optimization from the run journal in cache \
             directory $(docv) (implies $(b,--cache-dir) $(docv)): \
             journaled evals replay without re-execution and the search \
             continues mid-trajectory.")
  in
  let inject_crash_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-crash-after" ] ~docv:"N"
          ~doc:
            "Testing hook: hard-kill the process (exit 66) once $(docv) \
             evals have completed — the journal must make the run \
             resumable.")
  in
  let inject_interrupt_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-interrupt-after" ] ~docv:"N"
          ~doc:
            "Testing hook: simulate SIGINT delivery once $(docv) evals \
             have completed.")
  in
  let run path vars specs analysis node freq harmonics steps t_stop dt f_start
      f_stop ppd algo max_evals tol_x tol_f init_step weight cache_dir no_cache
      telemetry_path job_iters job_wall no_lint ordering stats resume
      job_deadline grace inject_crash inject_interrupt =
    let deck_text =
      try
        let ic = open_in path in
        let len = in_channel_length ic in
        let text = really_input_string ic len in
        close_in ic;
        text
      with Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit exit_parse
    in
    let vars, spec =
      try
        let vars = List.map Opt.Loop.parse_var vars in
        if vars = [] then begin
          Printf.eprintf "optimize: at least one --var is required\n";
          exit exit_parse
        end;
        let names = List.map (fun v -> v.Opt.Loop.v_name) vars in
        if List.length (List.sort_uniq compare names) <> List.length names then begin
          Printf.eprintf "optimize: duplicate --var name\n";
          exit exit_parse
        end;
        if specs = [] then begin
          Printf.eprintf "optimize: at least one --spec clause is required\n";
          exit exit_parse
        end;
        (vars, Opt.Spec.of_strings specs)
      with Opt.Loop.Parse_error msg ->
        Printf.eprintf "optimize: %s\n" msg;
        exit exit_parse
    in
    let analysis =
      try
        let defaults =
          make_defaults ~freq ~harmonics ~steps ~t_stop ~dt ~f_start ~f_stop
            ~ppd
        in
        match Batch.Spec.parse_analyses defaults analysis with
        | [ a ] -> a
        | _ ->
            Printf.eprintf "optimize: exactly one --analysis\n";
            exit exit_parse
      with Batch.Spec.Spec_error msg ->
        Printf.eprintf "optimize: %s\n" msg;
        exit exit_parse
    in
    (* every spec measure must read the payload kind the analysis
       produces — a mismatch would make every candidate unevaluable *)
    let kind =
      match analysis with
      | Batch.Spec.Dc -> "dc"
      | Batch.Spec.Ac _ -> "ac"
      | Batch.Spec.Tran _ -> "tran"
      | Batch.Spec.Hb _ | Batch.Spec.Shooting _ -> "hb"
    in
    List.iter
      (fun m ->
        let want = Opt.Measure.analysis_of m in
        if want <> kind then begin
          Printf.eprintf
            "optimize: measure %s reads %s payloads but --analysis is %s\n"
            (Opt.Measure.to_string m) want
            (Batch.Spec.analysis_name analysis);
          exit exit_parse
        end)
      (Opt.Spec.measures spec);
    let algo =
      match Opt.Loop.algo_of_string algo with
      | Some a -> a
      | None ->
          Printf.eprintf
            "optimize: unknown --algo %s (want nelder-mead or pattern)\n" algo;
          exit exit_parse
    in
    (* pre-flight lint at the initial point: optimized parameters may
       have no .param default in the deck *)
    if not no_lint then begin
      let overrides =
        List.map (fun v -> (v.Opt.Loop.v_name, v.Opt.Loop.v_init)) vars
      in
      match Deck.parse_string_located ~overrides deck_text with
      | exception Deck.Parse_error (line, msg) ->
          Printf.eprintf "%s:%d: %s\n" path line msg;
          exit exit_parse
      | nl, located ->
          let ds = Lint.run nl located in
          let text, fatal = Lint.report ~path ds in
          if ds <> [] then Printf.eprintf "%s\n" text;
          if fatal then begin
            Printf.eprintf
              "%s: %s; refusing to optimize (use --no-lint to override)\n"
              path (Lint.summary ds);
            exit exit_lint
          end
    end;
    let cache_dir = Option.value resume ~default:cache_dir in
    if resume <> None && no_cache then begin
      Printf.eprintf "optimize: --resume needs the cache (drop --no-cache)\n";
      exit exit_parse
    end;
    if stats then La.Sparse_lu.reset_counts ();
    let cfg =
      {
        Batch.Runner.deck_text;
        node;
        domains = 1;
        budget = budget_of job_iters job_wall;
        tol_scale = 1.0;
        ordering;
        stats;
        deadline = job_deadline;
        grace;
      }
    in
    (match (inject_crash, inject_interrupt) with
    | None, None -> ()
    | crash_after, interrupt_after ->
        Solve.Faults.arm_process
          {
            Solve.Faults.crash_after;
            interrupt_after;
            stall_job = None;
            accept_stall = None;
          });
    let options =
      { Opt.Optim.max_evals; tol_x; tol_f; init_step }
    in
    let run_hash =
      Opt.Loop.run_hash cfg ~spec ~analysis ~algo ~options ~weight vars
    in
    let cache = Batch.Cache.create ~enabled:(not no_cache) ~dir:cache_dir () in
    let telemetry =
      Batch.Telemetry.create ?log_path:telemetry_path ~total:max_evals ()
    in
    let replay =
      if resume = None then None
      else begin
        let r = Batch.Journal.load ~dir:cache_dir ~run:run_hash in
        if r = None then
          Printf.eprintf
            "optimize: no journal for this setup under %s; running from \
             scratch\n"
            cache_dir;
        r
      end
    in
    let journal =
      if no_cache then None
      else
        Some (Batch.Journal.create ~dir:cache_dir ~run:run_hash ~total:max_evals)
    in
    let install_signals () =
      let handle _ =
        if Solve.Deadline.interrupt_requested () then Unix._exit 130
        else Batch.Runner.request_stop ~grace
      in
      try
        Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
      with Invalid_argument _ | Sys_error _ -> ()
    in
    install_signals ();
    let outcome =
      Opt.Loop.run cfg ~cache ~telemetry ?journal ?replay ~emit:print_endline
        ~spec ~weight ~algo ~options ~analysis vars
    in
    (match journal with
    | None -> ()
    | Some j ->
        if outcome.Opt.Loop.o_interrupted then Batch.Journal.close j
        else Batch.Journal.finish_run j);
    Batch.Telemetry.close telemetry;
    let reason, iterations =
      match outcome.Opt.Loop.o_result with
      | Some r -> (Opt.Optim.reason_to_string r.Opt.Optim.reason, r.Opt.Optim.iterations)
      | None -> ("interrupted", 0)
    in
    print_endline
      (Batch.Json.obj
         [
           ( "summary",
             Batch.Json.obj
               [
                 ("algo", Batch.Json.str (Opt.Loop.algo_to_string algo));
                 ("reason", Batch.Json.str reason);
                 ("evals", Batch.Json.int outcome.Opt.Loop.o_evals);
                 ("iterations", Batch.Json.int iterations);
               ] );
         ]);
    (match outcome.Opt.Loop.o_best with
    | None -> ()
    | Some b ->
        print_endline
          (Batch.Json.obj
             [
               ( "best",
                 Batch.Json.obj
                   [
                     ("eval", Batch.Json.int b.Opt.Loop.e_index);
                     ("params", Batch.Expand.params_json b.Opt.Loop.e_params);
                     ("penalty", Batch.Json.num b.Opt.Loop.e_score.Opt.Spec.penalty);
                     ("met", Batch.Json.bool b.Opt.Loop.e_score.Opt.Spec.met);
                   ] );
             ]);
        List.iter
          (fun (v : Opt.Spec.verdict) ->
            print_endline
              (Batch.Json.obj
                 [
                   ( "verdict",
                     Batch.Json.obj
                       ([ ("clause", Batch.Json.str v.Opt.Spec.v_clause) ]
                       @ [
                           ( "value",
                             match v.Opt.Spec.v_value with
                             | None -> "null"
                             | Some x -> Batch.Json.num x );
                           ("pass", Batch.Json.bool v.Opt.Spec.v_pass);
                         ]
                       @
                       match v.Opt.Spec.v_margin with
                       | None -> []
                       | Some m -> [ ("margin", Batch.Json.num m) ]) );
                 ]))
          b.Opt.Loop.e_score.Opt.Spec.verdicts);
    let cs = Batch.Cache.stats cache in
    Printf.eprintf
      "optimize: algo=%s evals=%d reason=%s | cache: hits=%d misses=%d \
       stores=%d\n"
      (Opt.Loop.algo_to_string algo)
      outcome.Opt.Loop.o_evals reason cs.Batch.Cache.hits cs.Batch.Cache.misses
      cs.Batch.Cache.stores;
    if outcome.Opt.Loop.o_interrupted then exit exit_interrupted;
    let met =
      match outcome.Opt.Loop.o_best with
      | Some b -> b.Opt.Loop.e_score.Opt.Spec.met
      | None -> false
    in
    if not met then exit exit_spec
  in
  Cmd.v (Cmd.info "optimize" ~doc ~man)
    Term.(
      const run $ deck_arg $ var_args $ spec_args $ single_analysis_arg
      $ node_arg "out" $ freq_arg $ harmonics_arg $ steps_arg $ t_stop_arg
      $ dt_arg $ f_start_arg $ f_stop_arg $ ppd_arg $ algo_arg $ max_evals_arg
      $ tol_x_arg $ tol_f_arg $ init_step_arg $ weight_arg $ cache_dir_arg
      $ no_cache_arg $ telemetry_arg $ job_iters_arg $ job_wall_arg
      $ no_lint_arg $ ordering_arg $ stats_arg $ resume_arg $ job_deadline_arg
      $ grace_arg $ inject_crash_arg $ inject_interrupt_arg)

(* ------------------------------------------------------------- cache -- *)

let cache_cmd =
  let doc = "inspect and bound the sweep result cache" in
  let dir_arg =
    Arg.(
      value & opt string ".rfsim-cache"
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory.")
  in
  let stats_cmd =
    let doc = "report cache entry count, bytes on disk, and live journals" in
    let run dir =
      let entries, bytes = Batch.Cache.disk_usage ~dir in
      Printf.printf "cache: dir=%s entries=%d bytes=%d journals=%d\n" dir
        entries bytes
        (Batch.Journal.count ~dir)
    in
    Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let doc = "evict least-recently-used entries down to the given caps" in
    let max_bytes =
      Arg.(
        value & opt (some int) None
        & info [ "max-bytes" ] ~docv:"BYTES" ~doc:"Byte cap (omit: unlimited).")
    in
    let max_entries =
      Arg.(
        value & opt (some int) None
        & info [ "max-entries" ] ~docv:"N" ~doc:"Entry cap (omit: unlimited).")
    in
    let run dir max_bytes max_entries =
      let pins = Batch.Journal.referenced_keys ~dir in
      let gs =
        Batch.Cache.gc ~dir ?max_bytes ?max_entries
          ~pinned:(fun k -> Hashtbl.mem pins k)
          ()
      in
      Printf.printf
        "cache gc: examined=%d evicted=%d evicted_bytes=%d pinned=%d \
         entries=%d bytes=%d\n"
        gs.Batch.Cache.gc_examined gs.Batch.Cache.gc_evicted
        gs.Batch.Cache.gc_evicted_bytes gs.Batch.Cache.gc_pinned
        gs.Batch.Cache.gc_entries gs.Batch.Cache.gc_bytes
    in
    Cmd.v (Cmd.info "gc" ~doc) Term.(const run $ dir_arg $ max_bytes $ max_entries)
  in
  Cmd.group
    (Cmd.info "cache" ~doc
       ~man:
         [
           `S Manpage.s_description;
           `P
             "The sweep cache is content-addressed and grows without bound \
              unless gc'd. $(b,gc) evicts oldest-file-time-first (a cache \
              hit refreshes an entry's time) down to $(b,--max-bytes) / \
              $(b,--max-entries), but never evicts an entry referenced by \
              an in-progress run journal — interrupting a sweep and gc'ing \
              cannot break its --resume.";
         ])
    [ stats_cmd; gc_cmd ]

(* ------------------------------------------------------------- serve -- *)

let socket_arg =
  Arg.(
    value & opt string "rfsim.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path. Keep it short and relative: the \
           kernel caps socket paths around 100 bytes.")

let serve_cmd =
  let doc = "serve sweeps over a Unix-domain socket (resilient daemon)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Lifts the sweep runner into a long-lived service: clients submit \
         sweeps as line-delimited JSON over $(b,--socket) and stream back \
         job events, report lines and a final summary. Admission is \
         bounded ($(b,--queue-cap) jobs; excess sweeps get a typed \
         $(i,overloaded) refusal, never an unbounded buffer), every \
         completion is journaled durably before it is acknowledged, and \
         SIGTERM drains in-flight jobs under $(b,--grace) before exiting \
         5. After a crash (even kill -9) a restarted server replays \
         journaled jobs on resubmission, so the client's final report is \
         byte-identical to an uninterrupted run.";
    ]
  in
  let workers_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains (parallel jobs).")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"JOBS"
          ~doc:
            "Admission queue capacity in jobs. A sweep only enters if \
             every job fits; otherwise the submit is refused with a \
             typed $(i,overloaded) response.")
  in
  let client_inflight_arg =
    Arg.(
      value & opt int 4
      & info [ "client-inflight" ] ~docv:"N"
          ~doc:"Max concurrent sweeps per client connection.")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections idle this long with no sweep attached.")
  in
  let request_timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "request-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Reject connections that leave a frame half-sent this long \
             (slowloris guard).")
  in
  let max_frame_arg =
    Arg.(
      value & opt int Serve.Frame.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted request frame; larger frames get a \
                typed $(i,frame-too-large) rejection.")
  in
  let inject_crash_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-crash-after" ] ~docv:"N"
          ~doc:
            "Testing hook: hard-kill the server (exit 66, no cleanup) \
             once $(docv) jobs have completed — journals must make every \
             in-flight sweep resumable.")
  in
  let inject_interrupt_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-interrupt-after" ] ~docv:"N"
          ~doc:
            "Testing hook: simulate SIGTERM once $(docv) jobs have \
             completed, exercising the graceful drain deterministically.")
  in
  let inject_stall_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-stall" ] ~docv:"JOB"
          ~doc:
            "Testing hook: wedge job $(docv) in a busy loop so \
             --job-deadline (or the drain clamp) must quarantine it.")
  in
  let inject_accept_stall_arg =
    Arg.(
      value & opt (some int) None
      & info [ "inject-accept-stall" ] ~docv:"N"
          ~doc:
            "Testing hook: close the first $(docv) accepted connections \
             unread, exercising client reconnect/backoff.")
  in
  let run socket workers queue_cap client_inflight cache_dir no_cache
      telemetry_path job_iters job_wall ordering job_deadline grace
      idle_timeout request_timeout max_frame inject_crash inject_interrupt
      inject_stall inject_accept_stall =
    (match (inject_crash, inject_interrupt, inject_stall, inject_accept_stall)
     with
    | None, None, None, None -> ()
    | crash_after, interrupt_after, stall_job, accept_stall ->
        Solve.Faults.arm_process
          { Solve.Faults.crash_after; interrupt_after; stall_job; accept_stall });
    (* first signal begins the drain; a second force-quits shell-style *)
    let handle _ =
      if Solve.Deadline.interrupt_requested () then Unix._exit 130
      else Solve.Deadline.begin_drain ~grace
    in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)
     with Invalid_argument _ | Sys_error _ -> ());
    let cfg =
      {
        Serve.Server.socket_path = socket;
        workers = max 1 workers;
        queue_cap = max 1 queue_cap;
        client_inflight = max 1 client_inflight;
        cache_dir;
        no_cache;
        telemetry_path;
        ordering;
        budget = budget_of job_iters job_wall;
        job_deadline;
        grace;
        idle_timeout;
        request_timeout =
          (if request_timeout <= 0.0 then None else Some request_timeout);
        max_frame;
      }
    in
    let stop = Serve.Server.run cfg in
    Printf.printf "{\"serve\":\"interrupted\",\"drained\":%d,\"served\":%d}\n"
      stop.Serve.Server.drained_sweeps stop.Serve.Server.served_sweeps;
    exit exit_interrupted
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ socket_arg $ workers_arg $ queue_cap_arg
      $ client_inflight_arg $ cache_dir_arg $ no_cache_arg $ telemetry_arg
      $ job_iters_arg $ job_wall_arg $ ordering_arg $ job_deadline_arg
      $ grace_arg $ idle_timeout_arg $ request_timeout_arg $ max_frame_arg
      $ inject_crash_arg $ inject_interrupt_arg $ inject_stall_arg
      $ inject_accept_stall_arg)

(* ------------------------------------------------------------ client -- *)

let client_cmd =
  let doc = "talk to a running rfsim serve instance" in
  let retries_arg =
    Arg.(
      value & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Max retries after an unavailable server, a typed \
             $(i,overloaded) refusal, or a torn connection. Retrying a \
             sweep is safe: the server journal replays completed jobs, \
             so the final report is byte-identical.")
  in
  let backoff_arg =
    Arg.(
      value & opt float 0.1
      & info [ "backoff" ] ~docv:"SECONDS"
          ~doc:
            "Base retry delay; delay k is $(docv) * 2^k, capped at \
             $(b,--backoff-max). Deterministic (no jitter).")
  in
  let backoff_max_arg =
    Arg.(
      value & opt float 2.0
      & info [ "backoff-max" ] ~docv:"SECONDS" ~doc:"Retry delay cap.")
  in
  let events_arg =
    Arg.(
      value & flag
      & info [ "events" ] ~doc:"Print per-job progress events on stderr.")
  in
  let client_config socket retries backoff backoff_max events =
    {
      Serve.Client.socket_path = socket;
      retries = max 0 retries;
      backoff_base = backoff;
      backoff_max;
      events;
    }
  in
  let config_term =
    Term.(
      const client_config $ socket_arg $ retries_arg $ backoff_arg
      $ backoff_max_arg $ events_arg)
  in
  let sweep_sub =
    let doc = "submit a sweep and stream the report back" in
    let run ccfg path params corners analyses node freq harmonics steps t_stop
        dt f_start f_stop ppd no_lint =
      let deck_text =
        try
          let ic = open_in path in
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          close_in ic;
          text
        with Sys_error msg ->
          Printf.eprintf "%s\n" msg;
          exit exit_parse
      in
      let submit =
        {
          Serve.Protocol.s_deck = deck_text;
          s_params = params;
          s_corners = corners;
          s_analyses = analyses;
          s_node = node;
          s_defaults =
            make_defaults ~freq ~harmonics ~steps ~t_stop ~dt ~f_start ~f_stop
              ~ppd;
          s_events = ccfg.Serve.Client.events;
          s_no_lint = no_lint;
        }
      in
      let progress msg = Printf.eprintf "client: %s\n%!" msg in
      match Serve.Client.run_sweep ~progress ccfg submit with
      | Serve.Client.Gave_up why ->
          Printf.eprintf "client: %s\n" why;
          exit exit_unavailable
      | Serve.Client.Completed { report; summary; attempts } ->
          List.iter print_endline report;
          if summary.Serve.Client.interrupted then
            Printf.printf "{\"sweep\":\"interrupted\",\"completed\":%d,\"total\":%d}\n"
              (summary.Serve.Client.ok + summary.Serve.Client.suspect
             + summary.Serve.Client.failed)
              summary.Serve.Client.jobs;
          Printf.eprintf
            "client: run %s done: %d ok, %d suspect, %d failed of %d \
             (%d replayed, %d attempt(s))\n"
            summary.Serve.Client.run summary.Serve.Client.ok
            summary.Serve.Client.suspect summary.Serve.Client.failed
            summary.Serve.Client.jobs summary.Serve.Client.replayed attempts;
          if summary.Serve.Client.interrupted then exit exit_interrupted;
          if summary.Serve.Client.failed > 0 then exit exit_no_convergence
    in
    Cmd.v (Cmd.info "sweep" ~doc)
      Term.(
        const run $ config_term $ deck_arg $ param_args $ corner_args
        $ analysis_arg $ node_arg "out" $ freq_arg $ harmonics_arg $ steps_arg
        $ t_stop_arg $ dt_arg $ f_start_arg $ f_stop_arg $ ppd_arg
        $ no_lint_arg)
  in
  let print_or_die = function
    | Ok body -> print_endline body
    | Error why ->
        Printf.eprintf "client: %s\n" why;
        exit exit_unavailable
  in
  let status_sub =
    let doc = "print the server's status counters" in
    let run ccfg = print_or_die (Serve.Client.status ccfg) in
    Cmd.v (Cmd.info "status" ~doc) Term.(const run $ config_term)
  in
  let run_arg =
    Arg.(
      required & opt (some string) None
      & info [ "run" ] ~docv:"HASH" ~doc:"Run hash from the submit ack.")
  in
  let cancel_sub =
    let doc = "cancel a running sweep by run hash" in
    let run ccfg run_hash =
      print_or_die (Serve.Client.cancel ccfg ~run:run_hash)
    in
    Cmd.v (Cmd.info "cancel" ~doc) Term.(const run $ config_term $ run_arg)
  in
  let poll_sub =
    let doc = "poll a sweep's progress by run hash" in
    let run ccfg run_hash =
      print_or_die (Serve.Client.poll ccfg ~run:run_hash)
    in
    Cmd.v (Cmd.info "poll" ~doc) Term.(const run $ config_term $ run_arg)
  in
  Cmd.group
    (Cmd.info "client" ~doc
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Deterministic retrying client for $(b,rfsim serve). \
              Connect-refused, typed $(i,overloaded) refusals and torn \
              connections all retry on a fixed exponential backoff \
              ladder; any other typed error is permanent. Exits 6 when \
              retries are exhausted.";
         ])
    [ sweep_sub; status_sub; cancel_sub; poll_sub ]

let run_cmd =
  let doc = "run every directive embedded in the deck" in
  let run path no_lint =
    let nl, directives = load ~no_lint path in
    let c = Mna.build nl in
    Printf.printf "deck: %d nodes (%s), %d devices, %d directives\n\n"
      (Netlist.node_count nl) (print_nodes nl)
      (List.length (Netlist.devices nl))
      (List.length directives);
    let print_nodes_of = function
      | Deck.Print nodes -> nodes
      | _ -> []
    in
    let requested = List.concat_map print_nodes_of directives in
    let out_node = match requested with n :: _ -> n | [] -> "out" in
    List.iter
      (fun d ->
        match d with
        | Deck.Dc_op -> run_dc c
        | Deck.Tran { t_stop; dt } -> run_tran c ~t_stop ~dt ~nodes:[ out_node ]
        | Deck.Ac_sweep { f_start; f_stop } -> begin
            (* first voltage source is the stimulus *)
            match
              List.find_opt
                (function Device.Vsource _ -> true | _ -> false)
                (Netlist.devices nl)
            with
            | Some src -> run_ac c ~f_start ~f_stop ~source:(Device.name src) ~node:out_node
            | None -> Printf.eprintf ".ac: no voltage source in deck\n"
          end
        | Deck.Hb { harmonics } -> begin
            match Mna.fundamentals c with
            | freq :: _ -> run_hb c ~freq ~node:out_node ~harmonics
            | [] -> Printf.eprintf ".hb: no periodic source in deck\n"
          end
        | Deck.Noise_sweep { f_start; f_stop } ->
            run_noise c ~f_start ~f_stop ~node:out_node
        | Deck.Print _ | Deck.Param _ -> ())
      directives
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ deck_arg $ no_lint_arg)

let () =
  let doc = "rfkit circuit simulator" in
  let info = Cmd.info "rfsim" ~version:Rfkit.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; lint_cmd; analyze_cmd; dc_cmd; tran_cmd; ac_cmd; hb_cmd;
            shooting_cmd; mmft_cmd; noise_cmd; sweep_cmd; optimize_cmd;
            cache_cmd; serve_cmd; client_cmd;
          ]))
