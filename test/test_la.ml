(* Unit and property tests for the rfkit_la numerical substrate. *)

open Rfkit_la

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let mat_of rows = Mat.of_rows (Array.of_list (List.map Array.of_list rows))

(* deterministic pseudo-random generator for reproducible test matrices *)
let make_rng seed =
  let state = ref seed in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (float_of_int !state /. float_of_int 0x3FFFFFFF) -. 0.5

let random_mat rng n =
  Mat.init n n (fun _ _ -> rng ())

let diag_dominant rng n =
  let m = random_mat rng n in
  for i = 0 to n - 1 do
    Mat.update m i i (fun v -> v +. float_of_int n)
  done;
  m

(* ------------------------------------------------------------------ Vec *)

let test_vec_ops () =
  let x = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  let y = Vec.of_list [ 4.0; -5.0; 6.0 ] in
  check_float "dot" 12.0 (Vec.dot x y);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 x);
  check_float "norm1" 15.0 (Vec.norm1 y);
  check_float "norm_inf" 6.0 (Vec.norm_inf y);
  let z = Vec.add x y in
  check_float "add" 5.0 z.(0);
  Vec.axpy 2.0 x y;
  check_float "axpy" 6.0 y.(0);
  Alcotest.(check int) "max_abs_index" 2 (Vec.max_abs_index x)

let test_vec_linspace () =
  let v = Vec.linspace 0.0 1.0 5 in
  check_float "first" 0.0 v.(0);
  check_float "last" 1.0 v.(4);
  check_float "step" 0.25 v.(1)

(* ------------------------------------------------------------------ Mat *)

let test_mat_mul () =
  let a = mat_of [ [ 1.0; 2.0 ]; [ 3.0; 4.0 ] ] in
  let b = mat_of [ [ 5.0; 6.0 ]; [ 7.0; 8.0 ] ] in
  let c = Mat.mul a b in
  check_float "c00" 19.0 (Mat.get c 0 0);
  check_float "c01" 22.0 (Mat.get c 0 1);
  check_float "c10" 43.0 (Mat.get c 1 0);
  check_float "c11" 50.0 (Mat.get c 1 1)

let test_mat_matvec_t () =
  let a = mat_of [ [ 1.0; 2.0; 3.0 ]; [ 4.0; 5.0; 6.0 ] ] in
  let x = Vec.of_list [ 1.0; 1.0 ] in
  let y = Mat.matvec_t a x in
  check_float "y0" 5.0 y.(0);
  check_float "y2" 9.0 y.(2)

let test_mat_norms () =
  let a = mat_of [ [ 1.0; -2.0 ]; [ -3.0; 4.0 ] ] in
  check_float "inf" 7.0 (Mat.norm_inf a);
  check_float "one" 6.0 (Mat.norm1 a);
  check_float "fro" (sqrt 30.0) (Mat.frobenius a)

(* ------------------------------------------------------------------- Lu *)

let test_lu_solve () =
  let a = mat_of [ [ 4.0; 3.0 ]; [ 6.0; 3.0 ] ] in
  let b = Vec.of_list [ 10.0; 12.0 ] in
  let x = Lu.lin_solve a b in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_lu_det () =
  let a = mat_of [ [ 4.0; 3.0 ]; [ 6.0; 3.0 ] ] in
  check_float "det" (-6.0) (Lu.det (Lu.factor a))

let test_lu_transposed () =
  let rng = make_rng 7 in
  let a = diag_dominant rng 6 in
  let b = Vec.init 6 (fun i -> float_of_int (i + 1)) in
  let f = Lu.factor a in
  let x = Lu.solve_transposed f b in
  let r = Vec.sub (Mat.matvec (Mat.transpose a) x) b in
  check_float "residual" 0.0 (Vec.norm2 r)

let test_lu_singular () =
  let a = mat_of [ [ 1.0; 2.0 ]; [ 2.0; 4.0 ] ] in
  Alcotest.check_raises "singular" Lu.Singular (fun () -> ignore (Lu.factor a))

let test_lu_rcond () =
  let identity = Mat.identity 4 in
  let r = Lu.rcond_estimate identity (Lu.factor identity) in
  Alcotest.(check bool) "identity well conditioned" true (r > 0.1);
  let bad = mat_of [ [ 1.0; 0.0 ]; [ 0.0; 1e-12 ] ] in
  let r2 = Lu.rcond_estimate bad (Lu.factor bad) in
  Alcotest.(check bool) "near-singular detected" true (r2 < 1e-10)

(* ------------------------------------------------------------------ Clu *)

let test_clu_solve () =
  let a =
    Cmat.init 2 2 (fun i j ->
        if i = j then Cx.make 2.0 1.0 else Cx.make 0.5 (-0.25))
  in
  let b = Cvec.init 2 (fun i -> Cx.make (float_of_int (i + 1)) 0.0) in
  let x = Clu.lin_solve a b in
  let r = Cvec.sub (Cmat.matvec a x) b in
  check_float "residual" 0.0 (Cvec.norm2 r)

(* ------------------------------------------------------------------- Qr *)

let test_qr_reconstruct () =
  let rng = make_rng 11 in
  let a = Mat.init 6 4 (fun _ _ -> rng ()) in
  let f = Qr.factor a in
  let qm = Qr.q f and rm = Qr.r f in
  let qr = Mat.mul qm rm in
  Alcotest.(check bool) "A = QR" true (Mat.equal_eps 1e-9 a qr);
  (* Q has orthonormal columns *)
  let qtq = Mat.mul (Mat.transpose qm) qm in
  Alcotest.(check bool) "Q^T Q = I" true (Mat.equal_eps 1e-9 qtq (Mat.identity 4))

let test_qr_lstsq () =
  (* overdetermined fit of y = 2x + 1 *)
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let a = Mat.init 4 2 (fun i j -> if j = 0 then xs.(i) else 1.0) in
  let b = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  let c = Qr.lstsq a b in
  check_float "slope" 2.0 c.(0);
  check_float "intercept" 1.0 c.(1)

(* ------------------------------------------------------------------ Svd *)

let test_svd_reconstruct () =
  let rng = make_rng 23 in
  let a = Mat.init 5 3 (fun _ _ -> rng ()) in
  let u, s, v = Svd.decompose a in
  let us = Mat.init 5 3 (fun i j -> Mat.get u i j *. s.(j)) in
  let back = Mat.mul us (Mat.transpose v) in
  Alcotest.(check bool) "A = U S V^T" true (Mat.equal_eps 1e-8 a back);
  Alcotest.(check bool) "sorted" true (s.(0) >= s.(1) && s.(1) >= s.(2))

let test_svd_low_rank () =
  (* rank-1 matrix must compress to rank 1 *)
  let a = Mat.init 6 6 (fun i j -> float_of_int ((i + 1) * (j + 1))) in
  let x, y = Svd.low_rank_approx a 1e-10 in
  Alcotest.(check int) "rank" 1 x.Mat.cols;
  let back = Mat.mul x (Mat.transpose y) in
  Alcotest.(check bool) "reconstruct" true (Mat.equal_eps 1e-7 a back)

(* ------------------------------------------------------------------ Eig *)

let test_eig_diag () =
  let a = mat_of [ [ 3.0; 0.0 ]; [ 0.0; -1.0 ] ] in
  let ev = Eig.eigenvalues_sorted a in
  check_float "dominant" 3.0 ev.(0).Cx.re;
  check_float "second" (-1.0) ev.(1).Cx.re

let test_eig_complex_pair () =
  (* rotation-like matrix: eigenvalues a +- bi *)
  let a = mat_of [ [ 1.0; -2.0 ]; [ 2.0; 1.0 ] ] in
  let ev = Eig.eigenvalues a in
  let im = Float.abs ev.(0).Cx.im in
  check_float "re" 1.0 ev.(0).Cx.re;
  check_float "im" 2.0 im

let test_eig_known_3x3 () =
  (* companion matrix of (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  let a =
    mat_of [ [ 6.0; -11.0; 6.0 ]; [ 1.0; 0.0; 0.0 ]; [ 0.0; 1.0; 0.0 ] ]
  in
  let ev = Eig.eigenvalues_sorted a in
  check_float ~eps:1e-7 "l1" 3.0 ev.(0).Cx.re;
  check_float ~eps:1e-7 "l2" 2.0 ev.(1).Cx.re;
  check_float ~eps:1e-7 "l3" 1.0 ev.(2).Cx.re

let test_eig_random_trace () =
  (* sum of eigenvalues = trace, product = det *)
  let rng = make_rng 31 in
  let n = 8 in
  let a = random_mat rng n in
  let ev = Eig.eigenvalues a in
  let tr = ref 0.0 in
  for i = 0 to n - 1 do
    tr := !tr +. Mat.get a i i
  done;
  let sum = Array.fold_left (fun s z -> s +. z.Cx.re) 0.0 ev in
  let sum_im = Array.fold_left (fun s z -> s +. z.Cx.im) 0.0 ev in
  check_float ~eps:1e-7 "trace" !tr sum;
  check_float ~eps:1e-7 "imag parts cancel" 0.0 sum_im

let test_eigenvector () =
  let a = mat_of [ [ 2.0; 1.0 ]; [ 1.0; 2.0 ] ] in
  let v = Eig.eigenvector a (Cx.re 3.0) in
  (* eigenvector for lambda=3 is (1,1)/sqrt2 up to phase *)
  let ratio = Cx.( /: ) v.(0) v.(1) in
  check_float ~eps:1e-6 "component ratio" 1.0 ratio.Cx.re

(* --------------------------------------------------------------- Sparse *)

let test_sparse_matvec () =
  let m =
    Sparse.of_triplets ~rows:3 ~cols:3
      [ (0, 0, 2.0); (0, 2, 1.0); (1, 1, 3.0); (2, 0, 1.0); (2, 2, 4.0); (0, 0, 1.0) ]
  in
  Alcotest.(check int) "nnz merged" 5 (Sparse.nnz m);
  let y = Sparse.matvec m [| 1.0; 2.0; 3.0 |] in
  check_float "y0" 6.0 y.(0);
  check_float "y1" 6.0 y.(1);
  check_float "y2" 13.0 y.(2)

let test_sparse_dense_consistency () =
  let m =
    Sparse.of_triplets ~rows:2 ~cols:3 [ (0, 1, 1.5); (1, 0, -2.0); (1, 2, 0.5) ]
  in
  let d = Sparse.to_dense m in
  let x = [| 1.0; 2.0; 3.0 |] in
  let ys = Sparse.matvec m x and yd = Mat.matvec d x in
  check_float "row0" yd.(0) ys.(0);
  check_float "row1" yd.(1) ys.(1);
  let xt = [| 1.0; -1.0 |] in
  let ts = Sparse.matvec_t m xt and td = Mat.matvec_t d xt in
  for j = 0 to 2 do
    check_float "transpose" td.(j) ts.(j)
  done

(* --------------------------------------------------------------- Krylov *)

let test_gmres_vs_lu () =
  let rng = make_rng 41 in
  let n = 20 in
  let a = diag_dominant rng n in
  let b = Vec.init n (fun i -> sin (float_of_int i)) in
  let x_direct = Lu.lin_solve a b in
  let x_gmres, st = Krylov.gmres ~tol:1e-12 (Mat.matvec a) b in
  Alcotest.(check bool) "converged" true st.Krylov.converged;
  check_float ~eps:1e-8 "matches direct" 0.0 (Vec.dist2 x_direct x_gmres)

let test_gmres_preconditioned () =
  let rng = make_rng 43 in
  let n = 30 in
  let a = diag_dominant rng n in
  let d = Array.init n (fun i -> Mat.get a i i) in
  let precond v = Array.mapi (fun i vi -> vi /. d.(i)) v in
  let b = Vec.init n (fun i -> cos (float_of_int i)) in
  let _, st_plain = Krylov.gmres ~tol:1e-10 (Mat.matvec a) b in
  let x, st_pre = Krylov.gmres ~tol:1e-10 ~precond (Mat.matvec a) b in
  Alcotest.(check bool) "preconditioned converged" true st_pre.Krylov.converged;
  Alcotest.(check bool) "not slower" true
    (st_pre.Krylov.iterations <= st_plain.Krylov.iterations + 2);
  let r = Vec.sub (Mat.matvec a x) b in
  check_float ~eps:1e-6 "residual small" 0.0 (Vec.norm2 r)

let test_gmres_complex () =
  let n = 10 in
  let a =
    Cmat.init n n (fun i j ->
        if i = j then Cx.make 4.0 1.0
        else Cx.make (0.3 /. float_of_int (1 + abs (i - j))) 0.1)
  in
  let b = Cvec.init n (fun i -> Cx.make 1.0 (float_of_int i *. 0.1)) in
  let x, st = Krylov.gmres_complex ~tol:1e-12 (Cmat.matvec a) b in
  Alcotest.(check bool) "converged" true st.Krylov.converged;
  let r = Cvec.sub (Cmat.matvec a x) b in
  check_float ~eps:1e-8 "residual" 0.0 (Cvec.norm2 r)

let test_cg_spd () =
  let rng = make_rng 47 in
  let n = 15 in
  let m = random_mat rng n in
  (* A = M^T M + I is SPD *)
  let a = Mat.add (Mat.mul (Mat.transpose m) m) (Mat.identity n) in
  let b = Vec.init n (fun i -> float_of_int (i mod 3)) in
  let x, st = Krylov.cg ~tol:1e-12 (Mat.matvec a) b in
  Alcotest.(check bool) "converged" true st.Krylov.converged;
  let r = Vec.sub (Mat.matvec a x) b in
  check_float ~eps:1e-8 "residual" 0.0 (Vec.norm2 r)

let test_bicgstab () =
  let rng = make_rng 53 in
  let n = 15 in
  let a = diag_dominant rng n in
  let b = Vec.init n (fun i -> float_of_int (1 + i)) in
  let x, st = Krylov.bicgstab ~tol:1e-12 (Mat.matvec a) b in
  Alcotest.(check bool) "converged" true st.Krylov.converged;
  let r = Vec.sub (Mat.matvec a x) b in
  check_float ~eps:1e-7 "residual" 0.0 (Vec.norm2 r)

(* -------------------------------------------------------------- Lanczos *)

let test_lanczos_moments () =
  (* two-sided Lanczos matches moments l^T A^k r for k < 2q *)
  let rng = make_rng 59 in
  let n = 12 in
  let a = diag_dominant rng n in
  let r = Vec.init n (fun i -> 1.0 +. (0.1 *. float_of_int i)) in
  let l = Vec.init n (fun i -> 1.0 -. (0.05 *. float_of_int i)) in
  let q = 4 in
  let res =
    Lanczos.run ~matvec:(Mat.matvec a) ~matvec_t:(Mat.matvec_t a) ~r ~l ~steps:q
  in
  Alcotest.(check int) "full steps" q res.Lanczos.steps;
  let t = Lanczos.projected ~matvec:(Mat.matvec a) res in
  let d1 = Lanczos.d1 res in
  (* exact moment: l^T A^k r ; reduced: scale * d1 * e1^T T^k e1 *)
  let exact = ref (Vec.copy r) in
  let e1 = Vec.create q in
  e1.(0) <- 1.0;
  let reduced = ref (Vec.copy e1) in
  for k = 0 to (2 * q) - 1 do
    let m_exact = Vec.dot l !exact in
    let m_red = res.Lanczos.scale *. d1 *. Vec.dot e1 !reduced in
    let tol = 1e-6 *. Float.max 1.0 (Float.abs m_exact) in
    Alcotest.(check bool)
      (Printf.sprintf "moment %d matches (%g vs %g)" k m_exact m_red)
      true
      (Float.abs (m_exact -. m_red) < tol);
    exact := Mat.matvec a !exact;
    reduced := Mat.matvec t !reduced
  done

(* -------------------------------------------------------------- Arnoldi *)

let test_arnoldi_orthonormal () =
  let rng = make_rng 61 in
  let n = 10 in
  let a = random_mat rng n in
  let start = Vec.init n (fun i -> float_of_int (i + 1)) in
  let res = Arnoldi.run ~matvec:(Mat.matvec a) ~start ~steps:5 in
  Alcotest.(check int) "steps" 5 res.Arnoldi.steps;
  for i = 0 to 4 do
    for j = 0 to 4 do
      let d = Vec.dot res.Arnoldi.v.(i) res.Arnoldi.v.(j) in
      check_float ~eps:1e-10
        (Printf.sprintf "v%d . v%d" i j)
        (if i = j then 1.0 else 0.0)
        d
    done
  done

let test_arnoldi_moments () =
  (* Arnoldi ROM matches q moments v1^T A^k v1 for k < q *)
  let rng = make_rng 67 in
  let n = 12 in
  let a = diag_dominant rng n in
  let start = Vec.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let q = 4 in
  let res = Arnoldi.run ~matvec:(Mat.matvec a) ~start ~steps:q in
  let e1 = Vec.create q in
  e1.(0) <- 1.0;
  let exact = ref (Vec.scale (1.0 /. res.Arnoldi.start_norm) start) in
  let reduced = ref (Vec.copy e1) in
  for k = 0 to q - 1 do
    let m_exact = Vec.dot (Vec.scale (1.0 /. res.Arnoldi.start_norm) start) !exact in
    let m_red = Vec.dot e1 !reduced in
    check_float ~eps:1e-7 (Printf.sprintf "moment %d" k) m_exact m_red;
    exact := Mat.matvec a !exact;
    reduced := Mat.matvec res.Arnoldi.h !reduced
  done

(* ------------------------------------------------------------------ Fft *)

let test_fft_roundtrip () =
  let x = Cvec.init 8 (fun i -> Cx.make (float_of_int i) (float_of_int (i * i))) in
  let back = Fft.inverse (Fft.forward x) in
  check_float "roundtrip" 0.0 (Cvec.norm2 (Cvec.sub x back))

let test_fft_nonpow2_roundtrip () =
  let x = Cvec.init 6 (fun i -> Cx.make (sin (float_of_int i)) 0.0) in
  let back = Fft.inverse (Fft.forward x) in
  check_float "roundtrip" 0.0 (Cvec.norm2 (Cvec.sub x back))

let test_fft_sine_spectrum () =
  let n = 64 in
  let samples =
    Vec.init n (fun i ->
        let t = float_of_int i /. float_of_int n in
        3.0 *. sin (2.0 *. Float.pi *. 5.0 *. t))
  in
  let mag = Fft.magnitude_spectrum samples in
  check_float ~eps:1e-9 "bin 5 amplitude" 3.0 mag.(5);
  check_float ~eps:1e-9 "bin 4 empty" 0.0 mag.(4);
  check_float ~eps:1e-9 "dc empty" 0.0 mag.(0)

let test_fft_parseval () =
  let n = 32 in
  let x = Cvec.init n (fun i -> Cx.make (cos (float_of_int i)) (sin (0.3 *. float_of_int i))) in
  let y = Fft.forward x in
  let ex = Array.fold_left (fun s z -> s +. Cx.abs2 z) 0.0 x in
  let ey = Array.fold_left (fun s z -> s +. Cx.abs2 z) 0.0 y /. float_of_int n in
  check_float ~eps:1e-9 "parseval" ex ey

let test_fft_synthesize () =
  let n = 16 in
  let f t = 1.0 +. (2.0 *. cos t) -. (0.5 *. sin (3.0 *. t)) in
  let samples = Vec.init n (fun i -> f (2.0 *. Float.pi *. float_of_int i /. float_of_int n)) in
  let c = Fft.coefficients samples in
  (* evaluate off-grid: trigonometric interpolation is exact for band-limited f *)
  let theta = 0.7 in
  check_float ~eps:1e-9 "off-grid" (f theta) (Fft.synthesize c theta)

(* --------------------------------------------------------------- Interp *)

let test_interp_linear () =
  let xs = [| 0.0; 1.0; 3.0 |] and ys = [| 0.0; 2.0; 6.0 |] in
  check_float "mid" 1.0 (Interp.linear xs ys 0.5);
  check_float "second seg" 4.0 (Interp.linear xs ys 2.0);
  check_float "clamp low" 0.0 (Interp.linear xs ys (-1.0));
  check_float "clamp high" 6.0 (Interp.linear xs ys 9.0)

let test_interp_periodic () =
  let n = 32 in
  let samples = Vec.init n (fun i -> sin (2.0 *. Float.pi *. float_of_int i /. float_of_int n)) in
  check_float ~eps:1e-9 "quarter period" 1.0 (Interp.periodic samples (Float.pi /. 2.0))

(* ---------------------------------------------------------------- Stats *)

let test_stats_linreg () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (3.0 *. x) -. 1.0) xs in
  let slope, intercept, r2 = Stats.linreg xs ys in
  check_float "slope" 3.0 slope;
  check_float "intercept" (-1.0) intercept;
  check_float "r2" 1.0 r2

let test_stats_db () =
  check_float "db20 of 10" 20.0 (Stats.db20 10.0);
  check_float "db10 of 100" 20.0 (Stats.db10 100.0);
  check_float "db of 0 guarded" (-400.0) (Stats.db20 0.0)

(* ------------------------------------------------------------ properties *)

let qcheck_suite =
  let open QCheck in
  let small_vec =
    make
      Gen.(list_size (int_range 2 12) (float_range (-10.0) 10.0))
      ~print:Print.(list float)
  in
  [
    Test.make ~name:"lu: solve then multiply is identity" ~count:50 small_vec
      (fun l ->
        let n = List.length l in
        let rng = make_rng (1 + (n * 17)) in
        let a = diag_dominant rng n in
        let b = Vec.of_list l in
        let x = Lu.lin_solve a b in
        Vec.dist2 (Mat.matvec a x) b < 1e-6);
    Test.make ~name:"fft: roundtrip on arbitrary real data" ~count:50 small_vec
      (fun l ->
        let x = Cvec.of_real (Vec.of_list l) in
        let back = Fft.inverse (Fft.forward x) in
        Cvec.norm2 (Cvec.sub x back) < 1e-9);
    Test.make ~name:"svd: singular values nonnegative and sorted" ~count:30
      small_vec (fun l ->
        let n = List.length l in
        let rng = make_rng (1 + (n * 29)) in
        let a = random_mat rng n in
        let _, s, _ = Svd.decompose a in
        let ok = ref true in
        for i = 0 to n - 2 do
          if s.(i) < s.(i + 1) -. 1e-12 || s.(i) < 0.0 then ok := false
        done;
        !ok);
    Test.make ~name:"eig: spectral radius bounded by inf norm" ~count:30
      small_vec (fun l ->
        let n = List.length l in
        let rng = make_rng (1 + (n * 37)) in
        let a = random_mat rng n in
        let ev = Eig.eigenvalues_sorted a in
        Cx.abs ev.(0) <= Mat.norm_inf a +. 1e-9);
    Test.make ~name:"qr: least-squares residual orthogonal to range" ~count:30
      small_vec (fun l ->
        let m = List.length l in
        let rng = make_rng (3 + (m * 41)) in
        let cols = max 1 (m / 2) in
        let a = Mat.init m cols (fun _ _ -> rng ()) in
        let b = Vec.of_list l in
        match Qr.lstsq a b with
        | x ->
            let r = Vec.sub b (Mat.matvec a x) in
            let proj = Mat.matvec_t a r in
            Vec.norm_inf proj < 1e-7 *. Float.max 1.0 (Vec.norm_inf b)
        | exception Invalid_argument _ -> true);
    Test.make ~name:"gmres: solves random diagonally dominant systems" ~count:30
      small_vec (fun l ->
        let n = List.length l in
        let rng = make_rng (5 + (n * 43)) in
        let a = diag_dominant rng n in
        let b = Vec.of_list l in
        let x, st = Krylov.gmres ~tol:1e-11 (Mat.matvec a) b in
        st.Krylov.converged && Vec.dist2 (Mat.matvec a x) b < 1e-6 *. (1.0 +. Vec.norm2 b));
    Test.make ~name:"sparse: matvec is linear" ~count:30 small_vec (fun l ->
        let n = List.length l in
        let rng = make_rng (7 + (n * 47)) in
        let triplets =
          List.concat
            (List.init n (fun i ->
                 [ (i, i, 1.0 +. Float.abs (rng ())); (i, (i + 1) mod n, rng ()) ]))
        in
        let m = Sparse.of_triplets ~rows:n ~cols:n triplets in
        let x = Vec.of_list l in
        let y = Vec.init n (fun i -> rng () *. float_of_int (i + 1)) in
        let lhs = Sparse.matvec m (Vec.add x y) in
        let rhs = Vec.add (Sparse.matvec m x) (Sparse.matvec m y) in
        Vec.dist2 lhs rhs < 1e-9 *. (1.0 +. Vec.norm2 lhs));
    Test.make ~name:"fft: linearity" ~count:30 small_vec (fun l ->
        let x = Cvec.of_real (Vec.of_list l) in
        let n = Array.length x in
        let y = Cvec.init n (fun i -> Cx.make (cos (float_of_int i)) 0.3) in
        let fx = Fft.forward x and fy = Fft.forward y in
        let fsum = Fft.forward (Cvec.add x y) in
        Cvec.norm2 (Cvec.sub fsum (Cvec.add fx fy)) < 1e-9 *. (1.0 +. Cvec.norm2 fsum));
    Test.make ~name:"interp: periodic interpolation exact at samples" ~count:30
      small_vec (fun l ->
        let samples = Vec.of_list l in
        let n = Array.length samples in
        let ok = ref true in
        for i = 0 to n - 1 do
          let theta = 2.0 *. Float.pi *. float_of_int i /. float_of_int n in
          if Float.abs (Interp.periodic samples theta -. samples.(i)) > 1e-8 then
            ok := false
        done;
        !ok);
    Test.make ~name:"lu: det product rule" ~count:30 small_vec (fun l ->
        let n = List.length l in
        let rng = make_rng (11 + (n * 53)) in
        let a = diag_dominant rng n and b = diag_dominant rng n in
        let da = Lu.det (Lu.factor a) and db = Lu.det (Lu.factor b) in
        let dab = Lu.det (Lu.factor (Mat.mul a b)) in
        Float.abs (dab -. (da *. db)) < 1e-6 *. Float.max 1.0 (Float.abs dab));
  ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "la.vec-mat",
      [
        tc "vec ops" test_vec_ops;
        tc "linspace" test_vec_linspace;
        tc "mat mul" test_mat_mul;
        tc "matvec_t" test_mat_matvec_t;
        tc "norms" test_mat_norms;
      ] );
    ( "la.factor",
      [
        tc "lu solve" test_lu_solve;
        tc "lu det" test_lu_det;
        tc "lu transposed" test_lu_transposed;
        tc "lu singular" test_lu_singular;
        tc "lu rcond" test_lu_rcond;
        tc "clu solve" test_clu_solve;
        tc "qr reconstruct" test_qr_reconstruct;
        tc "qr least squares" test_qr_lstsq;
        tc "svd reconstruct" test_svd_reconstruct;
        tc "svd low rank" test_svd_low_rank;
      ] );
    ( "la.eig",
      [
        tc "diagonal" test_eig_diag;
        tc "complex pair" test_eig_complex_pair;
        tc "companion 3x3" test_eig_known_3x3;
        tc "trace identity" test_eig_random_trace;
        tc "eigenvector" test_eigenvector;
      ] );
    ( "la.sparse",
      [ tc "matvec" test_sparse_matvec; tc "dense consistency" test_sparse_dense_consistency ] );
    ( "la.krylov",
      [
        tc "gmres vs lu" test_gmres_vs_lu;
        tc "gmres preconditioned" test_gmres_preconditioned;
        tc "gmres complex" test_gmres_complex;
        tc "cg spd" test_cg_spd;
        tc "bicgstab" test_bicgstab;
      ] );
    ( "la.reduction",
      [
        tc "lanczos moments" test_lanczos_moments;
        tc "arnoldi orthonormal" test_arnoldi_orthonormal;
        tc "arnoldi moments" test_arnoldi_moments;
      ] );
    ( "la.fft",
      [
        tc "roundtrip pow2" test_fft_roundtrip;
        tc "roundtrip non-pow2" test_fft_nonpow2_roundtrip;
        tc "sine spectrum" test_fft_sine_spectrum;
        tc "parseval" test_fft_parseval;
        tc "synthesize off-grid" test_fft_synthesize;
      ] );
    ( "la.misc",
      [
        tc "interp linear" test_interp_linear;
        tc "interp periodic" test_interp_periodic;
        tc "linreg" test_stats_linreg;
        tc "db scales" test_stats_db;
      ] );
    ("la.properties", List.map QCheck_alcotest.to_alcotest qcheck_suite);
  ]
