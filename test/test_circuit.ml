(* Tests for the rfkit_circuit SPICE-class substrate. *)

open Rfkit_la
open Rfkit_circuit

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ----------------------------------------------------------------- Wave *)

let test_wave_sine () =
  let w = Wave.sine 2.0 1e3 in
  check_float "zero crossing" 0.0 (Wave.eval w 0.0);
  check_float "peak" 2.0 (Wave.eval w 0.25e-3);
  check_float "dc" 0.0 (Wave.dc_value w);
  Alcotest.(check (list (float 1e-9))) "fundamental" [ 1e3 ] (Wave.fundamentals w)

let test_wave_square () =
  let w = Wave.square ~rise:0.01 1.0 1e6 in
  check_float "plateau high" 1.0 (Wave.eval w 0.25e-6);
  check_float "plateau low" (-1.0) (Wave.eval w 0.75e-6);
  (* edges pass through zero at period boundaries *)
  check_float "edge center" 0.0 (Wave.eval w 0.0)

let test_wave_sum () =
  let w = Wave.two_tone 1.0 1e3 0.5 2e3 in
  Alcotest.(check (list (float 1e-9))) "two fundamentals" [ 1e3; 2e3 ] (Wave.fundamentals w);
  check_float ~eps:1e-12 "superposition" (Wave.eval w 1e-4)
    (Wave.eval (Wave.sine 1.0 1e3) 1e-4 +. Wave.eval (Wave.sine 0.5 2e3) 1e-4)

let test_wave_pwl () =
  let w = Wave.Pwl [| (0.0, 0.0); (1.0, 2.0); (2.0, 2.0) |] in
  check_float "interp" 1.0 (Wave.eval w 0.5);
  check_float "clamp" 2.0 (Wave.eval w 5.0)

(* ------------------------------------------------------------------- DC *)

let divider () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Dc 10.0);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.resistor nl "R2" "out" "0" 3e3;
  nl

let test_dc_divider () =
  let c = Mna.build (divider ()) in
  let x = Dc.solve c in
  check_float "input node" 10.0 x.(Mna.node c "in");
  check_float "divider output" 7.5 x.(Mna.node c "out")

let test_dc_branch_current () =
  let c = Mna.build (divider ()) in
  let x = Dc.solve c in
  match Mna.branch_index c "V1" with
  | None -> Alcotest.fail "V1 should have a branch current"
  | Some bi ->
      (* current through source = -10/(4k) flowing out of + terminal *)
      check_float ~eps:1e-12 "source current" (-.(10.0 /. 4e3)) x.(bi)

let test_dc_diode_clamp () =
  (* V -> R -> diode to ground: diode drop should be near 0.6-0.8 V *)
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Dc 5.0);
  Netlist.resistor nl "R1" "in" "d" 1e3;
  Netlist.diode nl "D1" "d" "0" ();
  let c = Mna.build nl in
  let x = Dc.solve c in
  let vd = x.(Mna.node c "d") in
  Alcotest.(check bool) "diode drop plausible" true (vd > 0.5 && vd < 0.85);
  (* KCL: current through R equals diode current *)
  let ir = (5.0 -. vd) /. 1e3 in
  let id = 1e-14 *. (Float.exp (vd /. 0.02585) -. 1.0) in
  check_float ~eps:1e-9 "KCL at diode node" ir id

let test_dc_mosfet_saturation () =
  (* common-source stage biased in saturation *)
  let nl = Netlist.create () in
  Netlist.vsource nl "VDD" "vdd" "0" (Wave.Dc 3.0);
  Netlist.vsource nl "VG" "g" "0" (Wave.Dc 1.0);
  Netlist.resistor nl "RD" "vdd" "d" 10e3;
  Netlist.mosfet nl "M1" ~d:"d" ~g:"g" ~s:"0" ~kp:2e-4 ~vth:0.5 ~lambda:0.0 ();
  let c = Mna.build nl in
  let x = Dc.solve c in
  let vd = x.(Mna.node c "d") in
  (* Id = 0.5*2e-4*0.25 = 25 uA, Vd = 3 - 0.25 = 2.75 *)
  check_float ~eps:1e-6 "drain voltage" 2.75 vd

let test_dc_vccs () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Dc 2.0);
  Netlist.vccs nl "G1" "0" "out" "in" "0" 1e-3;
  Netlist.resistor nl "RL" "out" "0" 1e3;
  let c = Mna.build nl in
  let x = Dc.solve c in
  (* current 1e-3*2 flows from node 0 to out inside device -> out rises *)
  check_float "vccs output" 2.0 x.(Mna.node c "out")

(* ------------------------------------------------------------ Transient *)

let test_tran_rc_charge () =
  (* RC step response: v(t) = V (1 - e^{-t/RC}) *)
  let r = 1e3 and cap = 1e-6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Dc 1.0);
  Netlist.resistor nl "R1" "in" "out" r;
  Netlist.capacitor nl "C1" "out" "0" cap;
  let c = Mna.build nl in
  let tau = r *. cap in
  let x0 = Vec.create (Mna.size c) in
  (* start discharged: set the source node consistently *)
  let res = Tran.run ~x0 c ~t_stop:(5.0 *. tau) ~dt:(tau /. 200.0) in
  let vout = Tran.voltage_trace c res "out" in
  let n = Array.length vout in
  let t_end = res.Tran.times.(n - 1) in
  let expected = 1.0 -. Float.exp (-.t_end /. tau) in
  check_float ~eps:1e-3 "final value" expected vout.(n - 1);
  (* value at one tau *)
  let idx_tau = int_of_float (Float.of_int n *. 0.2) in
  let v_tau = vout.(idx_tau) in
  let expected_tau = 1.0 -. Float.exp (-.res.Tran.times.(idx_tau) /. tau) in
  check_float ~eps:5e-3 "value near tau" expected_tau v_tau

let test_tran_lc_oscillation () =
  (* undriven LC tank with initial capacitor charge conserves energy and
     oscillates at 1/(2 pi sqrt(LC)) *)
  let l = 1e-6 and cap = 1e-9 in
  let nl = Netlist.create () in
  Netlist.capacitor nl "C1" "a" "0" cap;
  Netlist.inductor nl "L1" "a" "0" l;
  let c = Mna.build nl in
  let x0 = Vec.create (Mna.size c) in
  x0.(Mna.node c "a") <- 1.0;
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (l *. cap)) in
  let per = 1.0 /. f0 in
  let res = Tran.run ~method_:Tran.Trapezoidal ~x0 c ~t_stop:(3.0 *. per) ~dt:(per /. 400.0) in
  let va = Tran.voltage_trace c res "a" in
  (* after exactly 3 periods the voltage returns near +1 *)
  let n = Array.length va in
  check_float ~eps:2e-2 "returns after 3 periods" 1.0 va.(n - 1)

let test_tran_adaptive_matches_fixed () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.sine 1.0 1e3);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 0.2e-6 ;
  let c = Mna.build nl in
  let t_stop = 2e-3 in
  let fixed = Tran.run c ~t_stop ~dt:1e-7 in
  let adaptive = Tran.run_adaptive ~lte_tol:1e-8 c ~t_stop ~dt0:1e-6 in
  let vf = Tran.voltage_trace c fixed "out" in
  let va = Tran.voltage_trace c adaptive "out" in
  let last_fixed = vf.(Array.length vf - 1) in
  let last_adaptive = va.(Array.length va - 1) in
  check_float ~eps:1e-3 "fixed vs adaptive endpoint" last_fixed last_adaptive;
  Alcotest.(check bool) "adaptive used fewer steps" true
    (Array.length adaptive.Tran.times < Array.length fixed.Tran.times)

(* ------------------------------------------------------------------- AC *)

let test_ac_rc_lowpass () =
  let r = 1e3 and cap = 1e-9 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Dc 0.0);
  Netlist.resistor nl "R1" "in" "out" r;
  Netlist.capacitor nl "C1" "out" "0" cap;
  let c = Mna.build nl in
  let fc = 1.0 /. (2.0 *. Float.pi *. r *. cap) in
  let res = Ac.sweep c ~source:"V1" ~freqs:[| fc /. 100.0; fc; fc *. 100.0 |] in
  let h = Ac.transfer c res "out" in
  check_float ~eps:1e-4 "passband gain" 1.0 (Cx.abs h.(0));
  check_float ~eps:1e-4 "corner -3dB" (1.0 /. sqrt 2.0) (Cx.abs h.(1));
  Alcotest.(check bool) "stopband rolloff" true (Cx.abs h.(2) < 0.011);
  (* phase at corner is -45 degrees *)
  check_float ~eps:1e-3 "corner phase" (-.Float.pi /. 4.0) (Cx.arg h.(1))

let test_ac_rlc_resonance () =
  let r = 10.0 and l = 1e-6 and cap = 1e-9 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Dc 0.0);
  Netlist.resistor nl "R1" "in" "out" r;
  Netlist.inductor nl "L1" "out" "mid" l;
  Netlist.capacitor nl "C1" "mid" "0" cap;
  let c = Mna.build nl in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (l *. cap)) in
  let res = Ac.sweep c ~source:"V1" ~freqs:[| f0 |] in
  let h = Ac.transfer c res "out" in
  (* at series resonance the LC is a short: out ~ 0 *)
  Alcotest.(check bool) "series resonance short" true (Cx.abs h.(0) < 1e-6)

let test_ac_output_noise_resistor () =
  (* noise of a lone resistor loaded by an ideal capacitor: at f -> 0 the
     output PSD approaches 4kTR *)
  let r = 1e3 in
  let nl = Netlist.create () in
  Netlist.resistor nl "R1" "out" "0" r;
  Netlist.capacitor nl "C1" "out" "0" 1e-12 ;
  let c = Mna.build nl in
  let psd = Ac.output_noise c ~node:"out" ~freqs:[| 1.0 |] in
  let expected = 4.0 *. Device.boltzmann *. Device.room_temp *. r in
  check_float ~eps:(expected *. 1e-6) "4kTR" expected psd.(0)

(* ------------------------------------------------------------ KCL/charge *)

let test_kcl_conservation () =
  (* sum of f over node rows of a floating internal net must vanish for
     any state: currents only redistribute *)
  let nl = Netlist.create () in
  Netlist.isource nl "I1" "a" "0" (Wave.Dc 1e-3);
  Netlist.resistor nl "R1" "a" "b" 1e3;
  Netlist.resistor nl "R2" "b" "0" 1e3;
  Netlist.capacitor nl "C1" "b" "0" 1e-9;
  let c = Mna.build nl in
  let x = Vec.init (Mna.size c) (fun i -> 0.1 *. float_of_int (i + 1)) in
  let f = Mna.eval_f c x in
  (* current into b from R1 equals out through R2 plus... verify b row *)
  let va = x.(Mna.node c "a") and vb = x.(Mna.node c "b") in
  let expect = ((vb -. va) /. 1e3) +. (vb /. 1e3) in
  check_float ~eps:1e-12 "node b KCL assembly" expect f.(Mna.node c "b")

let test_jacobian_matches_fd () =
  (* G(x) must match finite differences of f on a nonlinear circuit *)
  let nl = Netlist.create () in
  Netlist.isource nl "I1" "a" "0" (Wave.Dc 1e-3);
  Netlist.diode nl "D1" "a" "b" ();
  Netlist.cubic_conductor nl "Q1" "b" "0" ~g1:(-1e-3) ~g3:1e-3;
  Netlist.tanh_gm nl "GM1" "b" "0" "a" "0" ~gm:2e-3 ~vsat:0.5;
  Netlist.nl_capacitor nl "CV" "a" "0" ~c0:1e-12 ~c1:1e-13;
  let c = Mna.build nl in
  let n = Mna.size c in
  let x = Vec.init n (fun i -> 0.3 +. (0.1 *. float_of_int i)) in
  let g = Mna.jac_g c x in
  let h = 1e-7 in
  for j = 0 to n - 1 do
    let xp = Vec.copy x and xm = Vec.copy x in
    xp.(j) <- xp.(j) +. h;
    xm.(j) <- xm.(j) -. h;
    let fp = Mna.eval_f c xp and fm = Mna.eval_f c xm in
    for i = 0 to n - 1 do
      let fd = (fp.(i) -. fm.(i)) /. (2.0 *. h) in
      check_float ~eps:1e-4 (Printf.sprintf "G(%d,%d)" i j) fd (Mat.get g i j)
    done
  done;
  (* and C(x) vs finite differences of q *)
  let cm = Mna.jac_c c x in
  for j = 0 to n - 1 do
    let xp = Vec.copy x and xm = Vec.copy x in
    xp.(j) <- xp.(j) +. h;
    xm.(j) <- xm.(j) -. h;
    let qp = Mna.eval_q c xp and qm = Mna.eval_q c xm in
    for i = 0 to n - 1 do
      let fd = (qp.(i) -. qm.(i)) /. (2.0 *. h) in
      check_float ~eps:1e-6 (Printf.sprintf "C(%d,%d)" i j) fd (Mat.get cm i j)
    done
  done

let test_mosfet_jacobian_fd () =
  let nl = Netlist.create () in
  Netlist.vsource nl "VD" "d" "0" (Wave.Dc 1.2);
  Netlist.vsource nl "VG" "g" "0" (Wave.Dc 0.9);
  Netlist.mosfet nl "M1" ~d:"d" ~g:"g" ~s:"0" ();
  let c = Mna.build nl in
  let n = Mna.size c in
  (* evaluate at a biased state, including a reverse-vds variant *)
  List.iter
    (fun vds ->
      let x = Vec.create n in
      x.(Mna.node c "d") <- vds;
      x.(Mna.node c "g") <- 0.9;
      let g = Mna.jac_g c x in
      let h = 1e-7 in
      for j = 0 to n - 1 do
        let xp = Vec.copy x and xm = Vec.copy x in
        xp.(j) <- xp.(j) +. h;
        xm.(j) <- xm.(j) -. h;
        let fp = Mna.eval_f c xp and fm = Mna.eval_f c xm in
        for i = 0 to n - 1 do
          let fd = (fp.(i) -. fm.(i)) /. (2.0 *. h) in
          check_float ~eps:1e-5
            (Printf.sprintf "vds=%g G(%d,%d)" vds i j)
            fd (Mat.get g i j)
        done
      done)
    [ 1.2; -0.7 ]

(* ----------------------------------------------------------------- Deck *)

let test_deck_values () =
  check_float "kilo" 1e3 (Deck.parse_value "1k");
  check_float "meg" 2.2e6 (Deck.parse_value "2.2meg");
  check_float "micro" 1.5e-6 (Deck.parse_value "1.5u");
  check_float "pico" 3e-12 (Deck.parse_value "3p");
  check_float "plain" 42.0 (Deck.parse_value "42");
  check_float "unit tail" 1e3 (Deck.parse_value "1kohm")

let test_deck_parse_divider () =
  let text =
    "* divider\nV1 in 0 DC 10\nR1 in out 1k\nR2 out 0 3k\n.dc\n.print out\n.end\n"
  in
  let nl, dirs = Deck.parse_string text in
  let c = Mna.build nl in
  let x = Dc.solve c in
  check_float "parsed divider" 7.5 x.(Mna.node c "out");
  Alcotest.(check int) "directives" 2 (List.length dirs)

let test_deck_sources () =
  let text = "V1 a 0 SIN(0 2 1e6)\nR1 a 0 1k\nI2 0 b SQUARE(1m 1e3)\nR2 b 0 2k\n" in
  let nl, _ = Deck.parse_string text in
  let c = Mna.build nl in
  Alcotest.(check (list (float 1e-6))) "fundamentals" [ 1e3; 1e6 ] (Mna.fundamentals c)

let test_deck_error () =
  Alcotest.check_raises "bad card"
    (Deck.Parse_error (1, "unrecognized card: X1 a b c"))
    (fun () -> ignore (Deck.parse_string "X1 a b c"))

(* ----------------------------------------------------------------- Noise *)

let test_noise_sources_enumeration () =
  let nl = Netlist.create () in
  Netlist.resistor nl "R1" "a" "0" 1e3;
  Netlist.capacitor nl "C1" "a" "0" 1e-12;
  Netlist.diode nl "D1" "a" "0" ();
  let c = Mna.build nl in
  let srcs = Mna.noise_sources c in
  Alcotest.(check int) "two noisy devices" 2 (Array.length srcs);
  let x = Vec.create (Mna.size c) in
  let r_psd = srcs.(0).Device.psd_at x in
  check_float ~eps:1e-30 "resistor psd"
    (4.0 *. Device.boltzmann *. Device.room_temp /. 1e3)
    r_psd

(* ----------------------------------------------------------- two-port *)

let test_two_port_z_of_pi_network () =
  (* resistive pi network: Z matrix has a closed form.
     Shunt Ra at port1, series Rb, shunt Rc at port2. *)
  let ra = 100.0 and rb = 50.0 and rc = 200.0 in
  let nl = Netlist.create () in
  Netlist.isource nl "I1" "p1" "0" (Wave.Dc 0.0);
  Netlist.isource nl "I2" "p2" "0" (Wave.Dc 0.0);
  Netlist.resistor nl "RA" "p1" "0" ra;
  Netlist.resistor nl "RB" "p1" "p2" rb;
  Netlist.resistor nl "RC" "p2" "0" rc;
  let c = Mna.build nl in
  let z = Ac.two_port_z c ~port1:("p1", "I1") ~port2:("p2", "I2") ~freq:1e3 in
  (* analytic: Y = [[1/ra + 1/rb, -1/rb], [-1/rb, 1/rc + 1/rb]]; Z = Y^-1 *)
  let y11 = (1.0 /. ra) +. (1.0 /. rb) in
  let y22 = (1.0 /. rc) +. (1.0 /. rb) in
  let y12 = -1.0 /. rb in
  let det = (y11 *. y22) -. (y12 *. y12) in
  check_float ~eps:1e-9 "z11" (y22 /. det) (Cmat.get z 0 0).Cx.re;
  check_float ~eps:1e-9 "z12" (-.y12 /. det) (Cmat.get z 0 1).Cx.re;
  check_float ~eps:1e-9 "z21" (-.y12 /. det) (Cmat.get z 1 0).Cx.re;
  check_float ~eps:1e-9 "z22" (y11 /. det) (Cmat.get z 1 1).Cx.re;
  (* and through Sparams: passive network => |S| <= 1 *)
  let s = Rfkit_em.Sparams.s_of_z z in
  for i = 0 to 1 do
    for j = 0 to 1 do
      Alcotest.(check bool) "passive" true (Cx.abs (Cmat.get s i j) <= 1.0 +. 1e-12)
    done
  done

let test_deck_noise_current_card () =
  let text = "N1 a 0 WHITE=1e-20 FC=1e5\nR1 a 0 1k\nC1 a 0 1p\n" in
  let nl, _ = Deck.parse_string text in
  let c = Mna.build nl in
  let srcs = Mna.noise_sources c in
  Alcotest.(check int) "two sources" 2 (Array.length srcs);
  let excess =
    Array.to_list srcs
    |> List.find (fun (s : Device.noise_source) -> s.Device.label = "N1:excess")
  in
  check_float ~eps:1e-30 "white psd" 1e-20 (excess.Device.psd_at (Vec.create (Mna.size c)));
  check_float ~eps:1e-6 "flicker corner" 1e5 excess.Device.flicker_corner

(* ------------------------------------------------------------- failures *)

let test_floating_node_fails_gracefully () =
  (* a node with no DC path anywhere: the MNA matrix is singular and DC
     must report non-convergence instead of crashing or looping *)
  let nl = Netlist.create () in
  Netlist.capacitor nl "C1" "float" "a" 1e-12;
  Netlist.capacitor nl "C2" "a" "0" 1e-12;
  Netlist.isource nl "I1" "a" "0" (Wave.Dc 1e-3);
  let c = Mna.build nl in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dc.solve c);
       false
     with Dc.No_convergence _ -> true)

let test_ground_is_not_an_unknown () =
  let nl = Netlist.create () in
  Netlist.resistor nl "R1" "a" "0" 1e3;
  let c = Mna.build nl in
  Alcotest.(check bool) "gnd lookup raises" true
    (try
       ignore (Mna.node c "gnd");
       false
     with Not_found -> true)

let test_deck_rejects_bad_directive () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Deck.parse_string "R1 a 0 1k\n.bogus 1 2\n");
       false
     with Deck.Parse_error _ -> true)

(* ------------------------------------------------------------ properties *)

let qcheck_suite =
  let open QCheck in
  let pos_values =
    make
      Gen.(list_size (int_range 2 6) (float_range 0.1 100.0))
      ~print:Print.(list float)
  in
  [
    Test.make ~name:"wave: Sum evaluates to the sum" ~count:50 pos_values
      (fun amps ->
        let waves = List.mapi (fun i a -> Wave.sine a (1e3 *. float_of_int (i + 1))) amps in
        let t = 1.234e-4 in
        Float.abs
          (Wave.eval (Wave.Sum waves) t
          -. List.fold_left (fun acc w -> acc +. Wave.eval w t) 0.0 waves)
        < 1e-9);
    Test.make ~name:"mna: linear circuit f is additive" ~count:50 pos_values
      (fun rs ->
        let nl = Netlist.create () in
        List.iteri
          (fun i r ->
            Netlist.resistor nl
              (Printf.sprintf "R%d" i)
              (Printf.sprintf "n%d" i)
              (Printf.sprintf "n%d" (i + 1))
              (r *. 100.0))
          rs;
        Netlist.resistor nl "RG" "n0" "0" 1e3;
        let c = Mna.build nl in
        let n = Mna.size c in
        let x = Vec.init n (fun i -> sin (float_of_int i)) in
        let y = Vec.init n (fun i -> cos (float_of_int (2 * i))) in
        let lhs = Mna.eval_f c (Vec.add x y) in
        let rhs = Vec.add (Mna.eval_f c x) (Mna.eval_f c y) in
        Vec.dist2 lhs rhs < 1e-9 *. (1.0 +. Vec.norm2 lhs));
    Test.make ~name:"mna: floating subnetwork conserves current" ~count:50
      pos_values (fun rs ->
        (* a resistor chain touching ground only at the last node: the sum
           of KCL rows equals the current into that grounded element *)
        let nl = Netlist.create () in
        List.iteri
          (fun i r ->
            Netlist.resistor nl
              (Printf.sprintf "R%d" i)
              (Printf.sprintf "n%d" i)
              (Printf.sprintf "n%d" (i + 1))
              (r *. 100.0))
          rs;
        let last = Printf.sprintf "n%d" (List.length rs) in
        Netlist.resistor nl "RG" last "0" 1e3;
        let c = Mna.build nl in
        let n = Mna.size c in
        let x = Vec.init n (fun i -> 0.3 *. float_of_int (i + 1)) in
        let f = Mna.eval_f c x in
        let total = Array.fold_left ( +. ) 0.0 f in
        let i_ground = Mna.voltage c x (Mna.node c last) /. 1e3 in
        Float.abs (total -. i_ground) < 1e-9 *. (1.0 +. Float.abs i_ground));
    Test.make ~name:"deck: engineering suffixes scale correctly" ~count:50
      (QCheck.make Gen.(pair (float_range 0.1 999.0) (int_range 0 6))
         ~print:Print.(pair float int))
      (fun (v, i) ->
        let suffixes = [| "f"; "p"; "n"; "u"; "m"; "k"; "meg" |] in
        let mults = [| 1e-15; 1e-12; 1e-9; 1e-6; 1e-3; 1e3; 1e6 |] in
        let s = Printf.sprintf "%.17g%s" v suffixes.(i) in
        let parsed = Deck.parse_value s in
        Float.abs (parsed -. (v *. mults.(i))) < 1e-9 *. Float.abs parsed);
  ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "circuit.wave",
      [
        tc "sine" test_wave_sine;
        tc "square" test_wave_square;
        tc "sum" test_wave_sum;
        tc "pwl" test_wave_pwl;
      ] );
    ( "circuit.dc",
      [
        tc "divider" test_dc_divider;
        tc "branch current" test_dc_branch_current;
        tc "diode clamp" test_dc_diode_clamp;
        tc "mosfet saturation" test_dc_mosfet_saturation;
        tc "vccs" test_dc_vccs;
      ] );
    ( "circuit.tran",
      [
        tc "rc charge" test_tran_rc_charge;
        tc "lc oscillation" test_tran_lc_oscillation;
        tc "adaptive vs fixed" test_tran_adaptive_matches_fixed;
      ] );
    ( "circuit.ac",
      [
        tc "rc lowpass" test_ac_rc_lowpass;
        tc "rlc resonance" test_ac_rlc_resonance;
        tc "resistor noise" test_ac_output_noise_resistor;
      ] );
    ( "circuit.consistency",
      [
        tc "kcl assembly" test_kcl_conservation;
        tc "jacobian vs fd" test_jacobian_matches_fd;
        tc "mosfet jacobian" test_mosfet_jacobian_fd;
      ] );
    ( "circuit.deck",
      [
        tc "values" test_deck_values;
        tc "divider" test_deck_parse_divider;
        tc "sources" test_deck_sources;
        tc "parse error" test_deck_error;
      ] );
    ("circuit.noise", [ tc "enumeration" test_noise_sources_enumeration ]);
    ( "circuit.twoport",
      [
        tc "pi network z matrix" test_two_port_z_of_pi_network;
        tc "noise current card" test_deck_noise_current_card;
      ] );
    ( "circuit.failures",
      [
        tc "floating node" test_floating_node_fails_gracefully;
        tc "ground not unknown" test_ground_is_not_an_unknown;
        tc "bad directive" test_deck_rejects_bad_directive;
      ] );
    ("circuit.properties", List.map QCheck_alcotest.to_alcotest qcheck_suite);
  ]
