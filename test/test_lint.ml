(* Tests for the rfkit_lint static netlist analyzer: one alcotest case per
   diagnostic code, the deliberately broken decks under examples/decks/bad,
   and property tests (random netlists never crash the linter, well-formed
   ladders are never flagged, parse_value round-trips). *)

open Rfkit_circuit
open Rfkit_lint

let codes ds = List.map (fun d -> d.Diagnostic.code) ds
let has_code c ds = List.mem c (codes ds)

let find_code c ds =
  match List.find_opt (fun d -> d.Diagnostic.code = c) ds with
  | Some d -> d
  | None ->
      Alcotest.failf "expected a %s diagnostic, got [%s]" c
        (String.concat "; " (List.map Diagnostic.to_string ds))

let check_code ?line ?severity c ds =
  let d = find_code c ds in
  (match line with
  | Some l -> Alcotest.(check (option int)) (c ^ " line") (Some l) d.Diagnostic.line
  | None -> ());
  match severity with
  | Some s ->
      Alcotest.(check string) (c ^ " severity")
        (Diagnostic.severity_label s)
        (Diagnostic.severity_label d.Diagnostic.severity)
  | None -> ()

(* ------------------------------------------------------ the catalogue -- *)

let test_l001_floating_island () =
  let ds =
    lint_string "V1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\nR3 x y 1k\n.dc\n"
  in
  check_code ~line:4 ~severity:Diagnostic.Error "L001" ds;
  (* exactly one island: the grounded part of the circuit is not flagged *)
  Alcotest.(check int) "one island" 1
    (List.length (List.filter (fun d -> d.Diagnostic.code = "L001") ds))

let test_l002_vsource_loop () =
  let ds = lint_string "V1 a 0 DC 5\nV2 a 0 DC 5\nR1 a 0 1k\n.dc\n" in
  check_code ~line:2 ~severity:Diagnostic.Error "L002" ds

let test_l002_inductor_loop () =
  (* an inductor directly across a voltage source shorts it at DC *)
  let ds = lint_string "V1 a 0 DC 1\nL1 a 0 1u\nR1 a 0 50\n" in
  check_code ~line:2 ~severity:Diagnostic.Error "L002" ds;
  (* a series RL to ground is fine *)
  let ok = lint_string "V1 a 0 DC 1\nL1 a b 1u\nR1 b 0 50\n" in
  Alcotest.(check bool) "series RL clean" false (has_code "L002" ok)

let test_l003_cap_cutset () =
  (* node a is wired up, but only through capacitors: no DC path *)
  let ds = lint_string "V1 in 0 DC 1\nR1 in 0 1k\nC1 in a 1n\nC2 a 0 1n\n" in
  check_code ~severity:Diagnostic.Error "L003" ds;
  Alcotest.(check bool) "not misreported as floating" false (has_code "L001" ds)

let test_l004_self_short_and_dangling () =
  let ds = lint_string "V1 a 0 DC 1\nR1 a a 1k\nR2 a 0 1k\n" in
  check_code ~line:2 ~severity:Diagnostic.Warning "L004" ds;
  let ds2 = lint_string "V1 a 0 DC 1\nR1 a 0 1k\nR2 a hang 1k\n" in
  let d = find_code "L004" ds2 in
  Alcotest.(check (option string)) "dangling node named" (Some "hang") d.Diagnostic.subject

let test_l005_element_values () =
  let ds = lint_string "V1 a 0 DC 1\nR1 a 0 0\n" in
  check_code ~line:2 ~severity:Diagnostic.Error "L005" ds;
  let ds2 = lint_string "V1 a 0 DC 1\nR1 a 0 1k\nD1 a 0 IS=-1\n" in
  check_code ~line:3 ~severity:Diagnostic.Error "L005" ds2;
  (* suspicious magnitude is only a hint *)
  let ds3 = lint_string "V1 a 0 DC 1\nR1 a 0 1k\nC1 a 0 2\n" in
  check_code ~line:3 ~severity:Diagnostic.Hint "L005" ds3

let test_l010_tran_sanity () =
  let ds = lint_string "V1 a 0 DC 1\nR1 a 0 1k\n.tran 1n 1u\n" in
  check_code ~line:3 ~severity:Diagnostic.Error "L010" ds;
  (* under-sampling a 1 MHz source *)
  let ds2 = lint_string "V1 a 0 SIN(0 1 1meg)\nR1 a 0 1k\n.tran 1m 1u\n" in
  check_code ~line:3 ~severity:Diagnostic.Warning "L010" ds2

let test_l011_hb_sanity () =
  (* no periodic source: HB has no fundamental *)
  let ds = lint_string "V1 a 0 DC 1\nR1 a 0 1k\nD1 a 0\n.hb 8\n" in
  check_code ~line:4 ~severity:Diagnostic.Error "L011" ds;
  (* purely linear deck: HB is pointless but not wrong *)
  let ds2 = lint_string "V1 a 0 SIN(0 1 1meg)\nR1 a 0 1k\n.hb 8\n" in
  check_code ~line:3 ~severity:Diagnostic.Hint "L011" ds2

let test_l012_sweep_bounds () =
  let ds = lint_string "V1 a 0 DC 1\nR1 a 0 1k\n.ac 0 1meg\n" in
  check_code ~line:3 ~severity:Diagnostic.Error "L012" ds;
  let ds2 = lint_string "V1 a 0 DC 1\nR1 a 0 1k\n.noise 1meg 1k\n" in
  check_code ~line:3 ~severity:Diagnostic.Error "L012" ds2

let test_l013_print_unknown_node () =
  let ds = lint_string "V1 a 0 DC 1\nR1 a 0 1k\n.print a bogus\n" in
  let d = find_code "L013" ds in
  Alcotest.(check (option string)) "names the node" (Some "bogus") d.Diagnostic.subject;
  Alcotest.(check (option int)) "line" (Some 3) d.Diagnostic.line

let test_l020_conductance_spread () =
  let ds = lint_string "V1 a 0 DC 1\nR1 a 0 1m\nR2 a 0 1t\n" in
  check_code ~severity:Diagnostic.Warning "L020" ds

let test_good_decks_clean () =
  List.iter
    (fun path ->
      let ds = lint_file path in
      Alcotest.(check (list string)) (path ^ " clean") [] (codes ds))
    [
      "../examples/decks/lowpass.cir";
      "../examples/decks/mos_amp.cir";
      "../examples/decks/rectifier.cir";
    ]

let test_bad_decks_trip () =
  List.iter
    (fun (path, code) ->
      let ds = lint_file path in
      Alcotest.(check bool) (path ^ " trips " ^ code) true (has_code code ds);
      Alcotest.(check bool) (path ^ " has errors") true (has_errors ds))
    [
      ("../examples/decks/bad/floating.cir", "L001");
      ("../examples/decks/bad/vloop.cir", "L002");
      ("../examples/decks/bad/baddirective.cir", "L010");
    ]

let test_vloop_line_number () =
  (* acceptance: bad/vloop.cir reports L002 against the V2 card (line 3) *)
  let ds = lint_file "../examples/decks/bad/vloop.cir" in
  let d = find_code "L002" ds in
  Alcotest.(check (option int)) "line" (Some 3) d.Diagnostic.line;
  Alcotest.(check (option string)) "subject" (Some "V2") d.Diagnostic.subject

let test_renderers () =
  let ds = lint_string "V1 a 0 DC 5\nV2 a 0 DC 5\nR1 a 0 1k\n" in
  let d = find_code "L002" ds in
  let pretty = Diagnostic.to_string ~path:"deck.cir" d in
  Alcotest.(check bool) "pretty has location" true
    (String.length pretty > 12 && String.sub pretty 0 11 = "deck.cir:2:");
  let json = Diagnostic.to_json ~path:"deck.cir" d in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json code field" true (contains "\"code\":\"L002\"" json);
  Alcotest.(check bool) "json line field" true (contains "\"line\":2" json);
  Alcotest.(check bool) "json severity" true (contains "\"severity\":\"error\"" json)

let test_origin_threading () =
  let nl, _ = Deck.parse_string "V1 a 0 DC 1\n* comment\nR1 a 0 1k\n" in
  let origins = List.map Device.origin (Netlist.devices nl) in
  Alcotest.(check (list (option int))) "origins follow cards" [ Some 1; Some 3 ] origins

let test_parse_value_fixes () =
  let check_float msg expected actual =
    Alcotest.(check (float 1e-9)) msg expected actual
  in
  check_float "MEG case-insensitive" 2.2e6 (Deck.parse_value "2.2MEG");
  check_float "megohm keeps meg" 2.2e6 (Deck.parse_value "2.2MEGohm");
  check_float "milli" 1e-3 (Deck.parse_value "1m");
  check_float "trailing unit letters" 47e-12 (Deck.parse_value "47pF");
  check_float "kohm" 1e3 (Deck.parse_value "1kohm");
  check_float "plain unit tail" 5.0 (Deck.parse_value "5v");
  let rejects s =
    Alcotest.(check bool) ("rejects " ^ (if s = "" then "<empty>" else s)) true
      (try
         ignore (Deck.parse_value s);
         false
       with Deck.Parse_error _ -> true)
  in
  rejects "";
  rejects "   ";
  rejects "abc";
  rejects "meg";
  rejects "1.2.3k"

(* -------------------------------------------------------- properties -- *)

let qcheck_suite =
  let open QCheck in
  let node_name = function 0 -> "0" | k -> Printf.sprintf "n%d" k in
  let random_netlist =
    (* devices wired between arbitrary nodes of a small pool; frequently
       ill-formed on purpose — the linter must never raise on any of it *)
    let gen =
      Gen.(
        list_size (int_range 1 14)
          (triple (int_range 0 2) (pair (int_range 0 5) (int_range 0 5))
             (float_range (-2.0) 12.0)))
    in
    make gen
      ~print:
        Print.(list (triple int (pair int int) float))
  in
  let build cards =
    let nl = Netlist.create () in
    List.iteri
      (fun i (kind, (a, b), v) ->
        let name prefix = Printf.sprintf "%s%d" prefix i in
        let p = node_name a and n = node_name b in
        match kind with
        | 0 -> Netlist.resistor nl ~origin:(i + 1) (name "R") p n v
        | 1 -> Netlist.capacitor nl ~origin:(i + 1) (name "C") p n (v *. 1e-9)
        | _ -> Netlist.inductor nl ~origin:(i + 1) (name "L") p n (v *. 1e-6))
      cards;
    nl
  in
  [
    Test.make ~name:"lint: never crashes on random RLC netlists" ~count:200
      random_netlist (fun cards ->
        let nl = build cards in
        let ds = run_netlist nl in
        (* and every diagnostic renders *)
        List.iter (fun d -> ignore (Diagnostic.to_string d); ignore (Diagnostic.to_json d)) ds;
        true);
    Test.make ~name:"lint: well-formed RC ladder is never flagged" ~count:50
      (make Gen.(int_range 1 8) ~print:Print.int) (fun stages ->
        let nl = Netlist.create () in
        Netlist.vsource nl "V1" "n0" "0" (Wave.sine 1.0 1e6);
        for k = 1 to stages do
          Netlist.resistor nl
            (Printf.sprintf "R%d" k)
            (Printf.sprintf "n%d" (k - 1))
            (Printf.sprintf "n%d" k)
            1e3;
          Netlist.capacitor nl (Printf.sprintf "C%d" k) (Printf.sprintf "n%d" k) "0" 1e-9
        done;
        run_netlist nl = []);
    Test.make ~name:"deck: parse_value round-trips scale and unit tails" ~count:200
      (make
         Gen.(
           triple (float_range 0.001 999.0) (int_range 0 8)
             (pair (int_range 0 3) bool))
         ~print:Print.(triple float int (pair int bool)))
      (fun (v, si, (ti, upper)) ->
        let suffixes = [| ""; "f"; "p"; "n"; "u"; "m"; "k"; "meg"; "g" |] in
        let mults = [| 1.0; 1e-15; 1e-12; 1e-9; 1e-6; 1e-3; 1e3; 1e6; 1e9 |] in
        let tails = [| ""; "hz"; "ohm"; "v" |] in
        (* a unit tail directly after a bare number would itself be read as
           a scale suffix, so only attach tails to scaled literals *)
        let tail = if suffixes.(si) = "" then "" else tails.(ti) in
        let s = Printf.sprintf "%.17g%s%s" v suffixes.(si) tail in
        let s = if upper then String.uppercase_ascii s else s in
        let parsed = Deck.parse_value s in
        let expected = v *. mults.(si) in
        Float.abs (parsed -. expected) <= 1e-9 *. Float.abs expected);
  ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "lint.codes",
      [
        tc "L001 floating island" test_l001_floating_island;
        tc "L002 vsource loop" test_l002_vsource_loop;
        tc "L002 inductor loop" test_l002_inductor_loop;
        tc "L003 capacitor cutset" test_l003_cap_cutset;
        tc "L004 shorts and dangling" test_l004_self_short_and_dangling;
        tc "L005 element values" test_l005_element_values;
        tc "L010 tran sanity" test_l010_tran_sanity;
        tc "L011 hb sanity" test_l011_hb_sanity;
        tc "L012 sweep bounds" test_l012_sweep_bounds;
        tc "L013 print unknown node" test_l013_print_unknown_node;
        tc "L020 conductance spread" test_l020_conductance_spread;
      ] );
    ( "lint.decks",
      [
        tc "good decks clean" test_good_decks_clean;
        tc "bad decks trip" test_bad_decks_trip;
        tc "vloop line number" test_vloop_line_number;
      ] );
    ( "lint.infrastructure",
      [
        tc "renderers" test_renderers;
        tc "origin threading" test_origin_threading;
        tc "parse_value fixes" test_parse_value_fixes;
      ] );
    ("lint.properties", List.map QCheck_alcotest.to_alcotest qcheck_suite);
  ]
