(* Integration tests: flows that cross library boundaries, mirroring how a
   designer would chain the tools -- extraction feeding circuit analysis,
   ROMs co-simulated against the full system, one circuit solved by
   several steady-state engines, deck-driven analyses. *)

open Rfkit_la
open Rfkit_circuit
open Rfkit_rf

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------- extraction -> circuit *)

let test_extraction_feeds_circuit () =
  (* MoM-extract a parallel-plate capacitor, drop the value into an RC
     netlist, and confirm the AC corner lands where the extraction says *)
  let open Rfkit_em in
  let side = 1e-3 and gap = 20e-6 in
  let plate z name =
    Geo3.mesh_plate ~name
      ~origin:(Geo3.v3 (-.side /. 2.0) (-.side /. 2.0) z)
      ~u:(Geo3.v3 side 0.0 0.0) ~v:(Geo3.v3 0.0 side 0.0) ~nu:8 ~nv:8
  in
  let p = Mom.make Kernel.free_space [| plate gap "top"; plate 0.0 "bottom" |] in
  let sol = Mom.solve_dense p in
  let c_extracted = Mom.coupling_capacitance sol 0 1 in
  let r = 1e3 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Dc 0.0);
  Netlist.resistor nl "R1" "in" "out" r;
  Netlist.capacitor nl "C1" "out" "0" c_extracted;
  let c = Mna.build nl in
  let fc = 1.0 /. (2.0 *. Float.pi *. r *. c_extracted) in
  let res = Ac.sweep c ~source:"V1" ~freqs:[| fc |] in
  let h = Ac.transfer c res "out" in
  check_float ~eps:1e-6 "extracted corner is -3 dB" (1.0 /. sqrt 2.0) (Cx.abs h.(0))

(* ----------------------------------------------- ROM <-> full transient *)

let test_rom_cosimulates_with_full_transient () =
  (* drive the full RC line and its order-6 PVL realization with the same
     step input: the outputs must overlay *)
  let open Rfkit_rom in
  let sections = 30 and r_total = 3e3 and c_total = 3e-12 in
  let d = Descriptor.rc_line ~sections ~r_total ~c_total in
  let rom = Pvl.reduce d ~s0:0.0 ~q:6 in
  (* full circuit transient with a step source *)
  let nl = Netlist.create () in
  let r_seg = r_total /. float_of_int sections in
  let c_seg = c_total /. float_of_int sections in
  Netlist.vsource nl "VIN" "n0" "0" (Wave.Dc 1.0);
  for k = 1 to sections do
    Netlist.resistor nl (Printf.sprintf "R%d" k)
      (Printf.sprintf "n%d" (k - 1))
      (Printf.sprintf "n%d" k)
      r_seg;
    Netlist.capacitor nl (Printf.sprintf "C%d" k) (Printf.sprintf "n%d" k) "0" c_seg
  done;
  let c = Mna.build nl in
  let tau = r_total *. c_total /. 2.0 in
  let t_stop = 6.0 *. tau and dt = tau /. 200.0 in
  let x0 = Vec.create (Mna.size c) in
  let full = Tran.run ~x0 c ~t_stop ~dt in
  let v_full = Tran.voltage_trace c full (Printf.sprintf "n%d" sections) in
  let rom_sim = Realize.simulate rom ~u:(fun _ -> 1.0) ~t_stop ~dt in
  let n = Array.length v_full in
  let worst = ref 0.0 in
  for k = n / 10 to n - 1 do
    let d = Float.abs (v_full.(k) -. rom_sim.Realize.output.(k)) in
    if d > !worst then worst := d
  done;
  Alcotest.(check bool)
    (Printf.sprintf "worst deviation %.2e V" !worst)
    true (!worst < 5e-3)

(* -------------------------------------- one circuit, several engines *)

let test_engines_agree_on_mixer () =
  (* the same mildly nonlinear two-tone circuit through HB2, MFDTD and
     MMFT: the main mix product must agree across all three *)
  let f1 = 50e3 and f2 = 20e6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "VRF" "rf" "0" (Wave.sine 0.1 f1);
  Netlist.vsource nl "VLO" "lo" "0" (Wave.sine 1.0 f2);
  Netlist.mult_vccs nl "MIX" "0" "mix" ~a:("rf", "0") ~b:("lo", "0") ~k:2e-3;
  Netlist.resistor nl "RM" "mix" "0" 500.0;
  Netlist.capacitor nl "CM" "mix" "0" 2e-12;
  let c = Mna.build nl in
  let hb2 =
    Hb2.solve ~options:{ Hb2.default_options with n1 = 8; n2 = 8 } c ~f1 ~f2
  in
  let a_hb2 = Hb2.mix_amplitude hb2 "mix" ~k1:1 ~k2:1 in
  let mmft = Mmft.solve c ~f1 ~f2 in
  let a_mmft = Mmft.mix_amplitude mmft "mix" ~slow:1 ~fast:1 in
  let mfdtd =
    Mfdtd.solve ~options:{ Mfdtd.default_options with n1 = 8; n2 = 32 } c ~f1 ~f2
  in
  (* extract the same mix coefficient from the MFDTD bivariate grid *)
  let grid = Mfdtd.node_grid mfdtd "mix" in
  let n1 = 8 and n2 = 32 in
  let acc = ref Cx.zero in
  for i1 = 0 to n1 - 1 do
    for i2 = 0 to n2 - 1 do
      let ph =
        Cx.expi
          (-2.0 *. Float.pi
          *. ((float_of_int i1 /. float_of_int n1)
             +. (float_of_int i2 /. float_of_int n2)))
      in
      acc := Cx.( +: ) !acc (Cx.scale (Mat.get grid i1 i2) ph)
    done
  done;
  let a_mfdtd = 2.0 *. Cx.abs (Cx.scale (1.0 /. float_of_int (n1 * n2)) !acc) in
  check_float ~eps:(0.02 *. a_hb2) "HB2 vs MMFT" a_hb2 a_mmft;
  (* MFDTD uses first-order differences: coarser, looser bound *)
  check_float ~eps:(0.15 *. a_hb2) "HB2 vs MFDTD" a_hb2 a_mfdtd

(* -------------------------------------------------- deck-driven flow *)

let test_deck_to_hb_flow () =
  let text =
    "* rectifier deck\n\
     V1 in 0 SIN(0 1.5 5meg)\n\
     RS in a 100\n\
     D1 a out\n\
     RL out 0 5k\n\
     CL out 0 50p\n\
     .hb 6\n\
     .print out\n"
  in
  let nl, dirs = Deck.parse_string text in
  let c = Mna.build nl in
  Alcotest.(check bool) "hb directive present" true
    (List.exists (function Deck.Hb _ -> true | _ -> false) dirs);
  let freq = List.hd (Mna.fundamentals c) in
  check_float ~eps:1.0 "fundamental from deck" 5e6 freq;
  let res = Hb.solve c ~freq in
  let dc = (Grid.harmonic (Hb.waveform res "out") 0).Cx.re in
  Alcotest.(check bool) (Printf.sprintf "dc %.3f" dc) true (dc > 0.2 && dc < 1.5)

(* ---------------------------------------- oscillator -> spectrum flow *)

let test_oscillator_noise_to_spur_budget () =
  (* phase-noise numbers feed a system-level calculation: integrate L(fm)
     over a channel to get RMS phase error -- the kind of spec (adjacent
     channel interference) the paper's intro cites *)
  let open Rfkit_noise in
  let orbit = Oscillators.solve ~steps_per_period:250 (Oscillators.van_der_pol ()) in
  let res = Phase_noise.analyze orbit in
  (* integrated phase error over 1 kHz..1 MHz: 2 int L(f) df *)
  let n = 200 in
  let acc = ref 0.0 in
  let f_lo = 1e3 and f_hi = 1e6 in
  for k = 0 to n - 1 do
    let f1 = f_lo *. ((f_hi /. f_lo) ** (float_of_int k /. float_of_int n)) in
    let f2 = f_lo *. ((f_hi /. f_lo) ** (float_of_int (k + 1) /. float_of_int n)) in
    let l_mid = Phase_noise.lorentzian res ~harmonic:1 (0.5 *. (f1 +. f2)) in
    acc := !acc +. (l_mid *. (f2 -. f1))
  done;
  let rms_phase_deg = sqrt (2.0 *. !acc) *. 180.0 /. Float.pi in
  Alcotest.(check bool)
    (Printf.sprintf "rms phase error %.2e deg plausible" rms_phase_deg)
    true
    (rms_phase_deg > 0.0 && rms_phase_deg < 1.0)

let suite =
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ( "integration",
      [
        slow "extraction feeds circuit" test_extraction_feeds_circuit;
        slow "rom co-simulates with transient" test_rom_cosimulates_with_full_transient;
        slow "engines agree on mixer" test_engines_agree_on_mixer;
        slow "deck to hb flow" test_deck_to_hb_flow;
        slow "noise to spur budget" test_oscillator_noise_to_spur_budget;
      ] );
  ]
