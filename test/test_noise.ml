(* Tests for rfkit_noise: Floquet/PPV machinery and the phase-noise theory
   claims of the paper's Section 3 — linear jitter growth, finite
   Lorentzian, power conservation, LTV divergence. *)

open Rfkit_la
open Rfkit_noise

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* shared solved orbit: lossy van der Pol (has a thermal noise source) *)
let vdp_orbit =
  lazy (Oscillators.solve ~steps_per_period:300 (Oscillators.van_der_pol ()))

let vdp_analysis = lazy (Phase_noise.analyze (Lazy.force vdp_orbit))

(* ---------------------------------------------------------------- Rng *)

let test_rng_reproducible () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 10 do
    check_float "same stream" (Rng.uniform a) (Rng.uniform b)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng) in
  check_float ~eps:0.03 "mean" 0.0 (Stats.mean xs);
  check_float ~eps:0.05 "variance" 1.0 (Stats.variance xs)

(* ------------------------------------------------------------- Floquet *)

let test_floquet_unit_multiplier () =
  let fl = (Lazy.force vdp_analysis).Phase_noise.floquet in
  Alcotest.(check bool)
    (Printf.sprintf "mu1 error %.2e" (Floquet.unit_multiplier_error fl))
    true
    (Floquet.unit_multiplier_error fl < 2e-2);
  (* second multiplier strictly inside the unit circle: stable orbit *)
  Alcotest.(check bool) "orbit stable" true
    (Cx.abs fl.Floquet.multipliers.(1) < 0.99)

let test_floquet_normalization_constancy () =
  let fl = (Lazy.force vdp_analysis).Phase_noise.floquet in
  Alcotest.(check bool)
    (Printf.sprintf "drift %.2e" fl.Floquet.normalization_drift)
    true
    (fl.Floquet.normalization_drift < 0.05)

let test_floquet_ppv_periodicity () =
  let fl = (Lazy.force vdp_analysis).Phase_noise.floquet in
  let err = Floquet.ppv_periodicity_error fl in
  Alcotest.(check bool) (Printf.sprintf "periodicity %.2e" err) true (err < 1e-3)

let test_floquet_rejects_forced () =
  (* a driven RC circuit has no unit multiplier *)
  let open Rfkit_circuit in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.sine 1.0 1e6);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 1e-9;
  let c = Mna.build nl in
  let orbit = Rfkit_rf.Shooting.solve c ~freq:1e6 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Floquet.compute orbit);
       false
     with Invalid_argument _ -> true)

(* ---------------------------------------------------------- Phase noise *)

let test_c_positive_and_small () =
  let res = Lazy.force vdp_analysis in
  Alcotest.(check bool) (Printf.sprintf "c = %.3e" res.Phase_noise.c) true
    (res.Phase_noise.c > 0.0 && res.Phase_noise.c < 1e-12)

let test_contributions_sum () =
  let res = Lazy.force vdp_analysis in
  let total =
    List.fold_left (fun s (_, v) -> s +. v) 0.0 res.Phase_noise.contributions
  in
  check_float ~eps:(1e-12 *. res.Phase_noise.c) "sum" res.Phase_noise.c total;
  (* the lossy vdP has exactly one noise source: the tank resistor *)
  Alcotest.(check int) "one source" 1 (List.length res.Phase_noise.contributions)

let test_lorentzian_finite_at_carrier () =
  let res = Lazy.force vdp_analysis in
  let s0 = Phase_noise.lorentzian res ~harmonic:1 0.0 in
  Alcotest.(check bool) "finite" true (Float.is_finite s0 && s0 > 0.0);
  (* LTV prediction diverges at the carrier instead *)
  Alcotest.(check bool) "ltv diverges" true
    (Phase_noise.ltv_psd res ~harmonic:1 0.0 = infinity)

let test_lorentzian_matches_ltv_far_out () =
  let res = Lazy.force vdp_analysis in
  let corner = Phase_noise.corner_offset res in
  let fm = 1e4 *. corner in
  let s_lor = Phase_noise.lorentzian res ~harmonic:1 fm in
  let ltv = Phase_noise.ltv_psd res ~harmonic:1 fm in
  check_float ~eps:(1e-6 *. ltv) "asymptote" ltv s_lor

let test_lorentzian_power_conserved () =
  let res = Lazy.force vdp_analysis in
  let ratio = Phase_noise.total_power_ratio res ~harmonic:1 in
  check_float ~eps:2e-2 "total power" 1.0 ratio

let test_lorentzian_monotone_rolloff () =
  let res = Lazy.force vdp_analysis in
  let corner = Phase_noise.corner_offset res in
  let prev = ref (Phase_noise.lorentzian res ~harmonic:1 0.0) in
  for k = 1 to 6 do
    let fm = corner *. (10.0 ** float_of_int (k - 3)) in
    let s = Phase_noise.lorentzian res ~harmonic:1 fm in
    Alcotest.(check bool) (Printf.sprintf "rolloff %d" k) true (s <= !prev +. 1e-30);
    prev := s
  done

let test_jitter_grows_linearly () =
  let res = Lazy.force vdp_analysis in
  let t1 = 1e-6 and t2 = 2e-6 in
  check_float
    ~eps:(1e-12 *. Phase_noise.jitter_variance res t2)
    "linear"
    (2.0 *. Phase_noise.jitter_variance res t1)
    (Phase_noise.jitter_variance res t2)

let test_l_dbc_shape () =
  (* L(fm) should fall ~20 dB/decade in the 1/f^2 region *)
  let res = Lazy.force vdp_analysis in
  let corner = Phase_noise.corner_offset res in
  let l1 = Phase_noise.l_dbc res ~fm:(1e3 *. corner) in
  let l2 = Phase_noise.l_dbc res ~fm:(1e4 *. corner) in
  check_float ~eps:0.2 "20 dB per decade" 20.0 (l1 -. l2)

(* --------------------------------------------------------- Monte-Carlo *)

let test_monte_carlo_slope_matches_c () =
  (* exaggerate the thermal noise so the random walk dominates within an
     affordable ensemble; fine steps keep the discretization-induced
     excess diffusion (which decays ~h^2) small *)
  let orbit = Oscillators.solve ~steps_per_period:900 (Oscillators.van_der_pol ()) in
  let res = Phase_noise.analyze orbit in
  let noise_scale = 1e6 in
  let ens =
    Jitter.run ~seed:3 ~trajectories:24 ~noise_scale orbit ~periods:40 ~node:"tank"
  in
  let slope, r2 = Jitter.fitted_slope ens in
  let expected = noise_scale *. res.Phase_noise.c in
  Alcotest.(check bool)
    (Printf.sprintf "linear growth (r2 = %.3f)" r2)
    true (r2 > 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "slope %.3e vs c %.3e (ratio %.2f)" slope expected (slope /. expected))
    true
    (slope > 0.6 *. expected && slope < 1.8 *. expected)

(* --------------------------------------------------------- flicker *)

let test_flicker_corner_and_slopes () =
  (* add a 50 kHz-corner excess-noise generator: L(fm) gains a 1/f^3
     region below the corner *)
  let orbit =
    Oscillators.solve ~steps_per_period:300 (Oscillators.van_der_pol ~with_flicker:true ())
  in
  let res = Phase_noise.analyze orbit in
  Alcotest.(check bool) "flicker weight positive" true (res.Phase_noise.c_flicker > 0.0);
  let corner = Phase_noise.flicker_corner_offset res in
  (* the excess source has the same white PSD as the tank resistor and a
     50 kHz corner: the L(fm) corner sits at c_fl/c = 50 kHz / 2 *)
  check_float ~eps:(0.05 *. corner) "corner placement" 25e3 corner;
  (* slopes: ~30 dB/decade well below the corner, ~20 well above *)
  let slope f = Phase_noise.l_dbc_colored res ~fm:f -. Phase_noise.l_dbc_colored res ~fm:(10.0 *. f) in
  Alcotest.(check bool)
    (Printf.sprintf "1/f^3 region slope %.1f" (slope 100.0))
    true
    (slope 100.0 > 28.0 && slope 100.0 < 31.0);
  Alcotest.(check bool)
    (Printf.sprintf "1/f^2 region slope %.1f" (slope 10e6))
    true
    (slope 10e6 > 19.0 && slope 10e6 < 21.0);
  (* two sources now contribute *)
  Alcotest.(check int) "two sources" 2 (List.length res.Phase_noise.contributions)

let test_flicker_in_ac_noise () =
  (* AC noise of an R-C with an added flicker generator rises at low f *)
  let open Rfkit_circuit in
  let nl = Netlist.create () in
  Netlist.resistor nl "R1" "out" "0" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 1e-12;
  Netlist.noise_current nl "NF" "out" "0" ~white:1e-22 ~flicker_corner:1e6;
  let c = Mna.build nl in
  let psd = Ac.output_noise c ~node:"out" ~freqs:[| 1e3; 1e6; 1e9 |] in
  Alcotest.(check bool)
    (Printf.sprintf "low-frequency rise: %.3g vs %.3g" psd.(0) psd.(1))
    true
    (psd.(0) > 100.0 *. psd.(1) /. 2.0);
  Alcotest.(check bool) "white floor at high f" true (psd.(2) < psd.(1))

(* ----------------------------------------------------- cyclostationary *)

let test_cyclo_collapses_to_lti () =
  (* zero-amplitude drive = time-invariant circuit: the LPTV analysis must
     reproduce the stationary AC noise at every frequency, including ones
     beyond the first Nyquist zone of the harmonic truncation *)
  let open Rfkit_circuit in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.sine 0.0 1e6);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 1e-9;
  let c = Mna.build nl in
  let hb = Rfkit_rf.Hb.solve c ~freq:1e6 in
  let freqs = [| 1e4; 159.155e3; 2.5e6 |] in
  let cyc = Cyclo.output_noise hb ~node:"out" ~freqs in
  let ac = Ac.output_noise c ~node:"out" ~freqs in
  Array.iteri
    (fun i v -> check_float ~eps:(1e-6 *. v) (Printf.sprintf "f %g" freqs.(i)) v cyc.(i))
    ac

let test_cyclo_noise_folding () =
  (* ideal multiplying mixer: input white noise from both RF and image
     sidebands folds onto the IF -- output PSD = S/2 (gain 0.5 per
     sideband, two sidebands) plus the load's own thermal noise *)
  let open Rfkit_circuit in
  let f_lo = 100e6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "VLO" "lo" "0" (Wave.sine 1.0 f_lo);
  Netlist.resistor nl "RN" "rf" "0" 1e3;
  Netlist.capacitor nl "CRF" "rf" "0" 1e-15;
  Netlist.mult_vccs nl "MIX" "0" "mix" ~a:("rf", "0") ~b:("lo", "0") ~k:1e-3;
  Netlist.resistor nl "RM" "mix" "0" 1e3;
  Netlist.capacitor nl "CM" "mix" "0" 1e-15;
  let c = Mna.build nl in
  let hb = Rfkit_rf.Hb.solve c ~freq:f_lo in
  let out = Cyclo.output_noise hb ~node:"mix" ~freqs:[| 5e6 |] in
  let s_r = 4.0 *. Device.boltzmann *. Device.room_temp *. 1e3 in
  let expect = (0.5 *. s_r) +. s_r in
  check_float ~eps:(1e-3 *. expect) "folded PSD" expect out.(0);
  (* the conversion-gain table shows the two symmetric sidebands *)
  let gains =
    Cyclo.conversion_gains hb ~node:"mix"
      ~source_pattern:(Mna.noise_pattern c (Mna.noise_sources c).(0))
      ~offset:5e6
  in
  let g k = List.assoc k gains in
  check_float ~eps:1e-2 "lower sideband gain" 500.0 (g (-1));
  check_float ~eps:1e-2 "upper sideband gain" 500.0 (g 1);
  Alcotest.(check bool) "no direct feedthrough" true (g 0 < 1e-3)

let test_cyclo_modulated_source () =
  (* a diode switched hard by the drive: its shot noise is cyclostationary
     (PSD follows the instantaneous current), so the output noise exceeds
     what the average current alone would predict at the conversion peaks *)
  let open Rfkit_circuit in
  let f0 = 50e6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Sine { ampl = 1.0; freq = f0; phase = 0.0; offset = 0.3 });
  Netlist.resistor nl "R1" "in" "d" 1e3;
  Netlist.diode nl "D1" "d" "0" ();
  let c = Mna.build nl in
  let hb = Rfkit_rf.Hb.solve c ~freq:f0 in
  let out = Cyclo.output_noise hb ~node:"d" ~freqs:[| 1e6 |] in
  Alcotest.(check bool) (Printf.sprintf "psd %.3e positive" out.(0)) true (out.(0) > 0.0)

(* -------------------------------------------------- other oscillators *)

let test_negative_gm_lc () =
  let bench = Oscillators.negative_gm_lc () in
  let orbit = Oscillators.solve ~steps_per_period:200 bench in
  let f = 1.0 /. orbit.Rfkit_rf.Shooting.period in
  (* near the tank resonance, pulled slightly by the saturating pair *)
  Alcotest.(check bool)
    (Printf.sprintf "freq %.3e near guess %.3e" f bench.Oscillators.freq_guess)
    true
    (Float.abs (f -. bench.Oscillators.freq_guess) < 0.2 *. bench.Oscillators.freq_guess);
  let res = Phase_noise.analyze orbit in
  Alcotest.(check bool) "c positive" true (res.Phase_noise.c > 0.0)

let test_ring3 () =
  let bench = Oscillators.ring3 () in
  let orbit = Oscillators.solve ~steps_per_period:150 bench in
  let f = 1.0 /. orbit.Rfkit_rf.Shooting.period in
  Alcotest.(check bool) (Printf.sprintf "ring oscillates at %.3e" f) true
    (f > 1e7 && f < 1e9);
  (* three stages with three noise sources *)
  let res = Phase_noise.analyze orbit in
  Alcotest.(check int) "three noise sources" 3
    (List.length res.Phase_noise.contributions)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ("noise.rng", [ tc "reproducible" test_rng_reproducible; tc "gaussian" test_rng_gaussian_moments ]);
    ( "noise.floquet",
      [
        slow "unit multiplier" test_floquet_unit_multiplier;
        slow "normalization constancy" test_floquet_normalization_constancy;
        slow "ppv periodicity" test_floquet_ppv_periodicity;
        tc "rejects forced circuit" test_floquet_rejects_forced;
      ] );
    ( "noise.phase",
      [
        slow "c plausible" test_c_positive_and_small;
        slow "contributions sum" test_contributions_sum;
        slow "lorentzian finite at carrier" test_lorentzian_finite_at_carrier;
        slow "matches ltv far out" test_lorentzian_matches_ltv_far_out;
        slow "power conserved" test_lorentzian_power_conserved;
        slow "monotone rolloff" test_lorentzian_monotone_rolloff;
        slow "jitter linear" test_jitter_grows_linearly;
        slow "L(fm) slope" test_l_dbc_shape;
      ] );
    ("noise.monte-carlo", [ slow "slope matches c" test_monte_carlo_slope_matches_c ]);
    ( "noise.cyclo",
      [
        slow "collapses to lti" test_cyclo_collapses_to_lti;
        slow "noise folding" test_cyclo_noise_folding;
        slow "modulated source" test_cyclo_modulated_source;
      ] );
    ( "noise.flicker",
      [
        slow "corner and slopes" test_flicker_corner_and_slopes;
        tc "ac noise" test_flicker_in_ac_noise;
      ] );
    ( "noise.oscillators",
      [ slow "negative-gm lc" test_negative_gm_lc; slow "ring3" test_ring3 ] );
  ]
