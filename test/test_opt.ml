(* Opt subsystem: the measure catalogue, interpolation edge behavior,
   the spec language and its penalty aggregation, the gradient-free
   optimizers on analytic objectives, and the closed loop's determinism
   and kill-and-resume contracts. *)

open Rfkit_opt
module B = Rfkit_batch
module M = Rfkit_rf.Measures
module Deadline = Rfkit_solve.Deadline
module Faults = Rfkit_solve.Faults

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf tol = Alcotest.(check (float tol))

(* ------------------------------------------- curve interpolation edges -- *)

(* one-pole magnitude curve on a log grid: |H| = 1/sqrt(1+(f/fc)^2) *)
let one_pole ~fc ~f_start ~f_stop ~ppd =
  let n =
    int_of_float (ceil (Float.log10 (f_stop /. f_start) *. float_of_int ppd))
    + 1
  in
  let freqs =
    Array.init n (fun i ->
        f_start *. (10.0 ** (float_of_int i /. float_of_int ppd)))
  in
  let mags =
    Array.map (fun f -> 1.0 /. sqrt (1.0 +. ((f /. fc) ** 2.0))) freqs
  in
  (freqs, mags)

let test_gain_at_edges () =
  let freqs, mags = one_pole ~fc:1e6 ~f_start:1e3 ~f_stop:1e9 ~ppd:10 in
  (* exact on a grid point *)
  (match M.gain_at ~freqs ~mags freqs.(7) with
  | Some g -> checkf 1e-12 "on-grid exact" mags.(7) g
  | None -> Alcotest.fail "on-grid gain_at returned None");
  (* endpoints included *)
  check_bool "left endpoint" true (M.gain_at ~freqs ~mags 1e3 <> None);
  check_bool "right endpoint" true (M.gain_at ~freqs ~mags 1e9 <> None);
  (* off-grid is typed None, never extrapolated *)
  check_bool "below range" true (M.gain_at ~freqs ~mags 999.0 = None);
  check_bool "above range" true (M.gain_at ~freqs ~mags 1.1e9 = None);
  (* interpolated value between samples stays between its brackets *)
  match M.gain_at ~freqs ~mags 1.5e6 with
  | Some g ->
      check_bool "bracketed" true
        (g < 1.0 /. sqrt 2.0 && g > 1.0 /. sqrt (1.0 +. 4.0))
  | None -> Alcotest.fail "mid-band gain_at returned None"

let qcheck_bw3db_interpolates =
  (* the -3 dB point of a one-pole response IS the pole frequency; the
     interpolated crossing must land within one grid-step ratio of it,
     far tighter than nearest-sample snapping on a 10/decade grid *)
  QCheck.Test.make ~count:50 ~name:"bw3db interpolates the crossing"
    QCheck.(float_range 4.5 7.5)
    (fun log_fc ->
      let fc = 10.0 ** log_fc in
      let freqs, mags = one_pole ~fc ~f_start:1e3 ~f_stop:1e9 ~ppd:10 in
      match M.bandwidth_3db ~freqs ~mags with
      | Some bw -> Float.abs (bw -. fc) /. fc < 0.02
      | None -> false)

let test_bw3db_edges () =
  (* flat curve never crosses: None, not an endpoint guess *)
  let freqs = [| 1e3; 1e4; 1e5 |] and mags = [| 1.0; 1.0; 1.0 |] in
  check_bool "no crossing" true (M.bandwidth_3db ~freqs ~mags = None);
  (* non-monotonic grid is a caller bug, typed loudly *)
  check_bool "bad grid raises" true
    (match M.bandwidth_3db ~freqs:[| 1e3; 1e3 |] ~mags:[| 1.0; 0.1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_band_measures () =
  let freqs, mags = one_pole ~fc:1e6 ~f_start:1e3 ~f_stop:1e9 ~ppd:10 in
  (* far above the pole the slope is 20 dB/decade: attenuation at 1e8 is
     ~40 dB worse than at 1e7, and the band minimum sits at the low edge *)
  (match M.band_attenuation_db ~freqs ~mags ~f_lo:1e8 ~f_hi:1e9 with
  | Some a -> check_bool "deep stopband" true (a > 35.0 && a < 45.0)
  | None -> Alcotest.fail "stopband returned None");
  (* band past the grid: None *)
  check_bool "band off grid" true
    (M.band_attenuation_db ~freqs ~mags ~f_lo:1e8 ~f_hi:2e9 = None);
  (* passband ripple of a monotone curve = edge-to-edge drop *)
  match M.ripple_db ~freqs ~mags ~f_lo:1e3 ~f_hi:1e4 with
  | Some r -> check_bool "tiny passband ripple" true (r >= 0.0 && r < 0.1)
  | None -> Alcotest.fail "ripple returned None"

let test_compression_curve () =
  (* soft limiter gain tanh(a)/a drops 1 dB near a = 0.62 *)
  let amps = Array.init 30 (fun i -> 0.01 *. (1.3 ** float_of_int i)) in
  let gains = Array.map (fun a -> Float.tanh a /. a) amps in
  (match M.compression_from_curve ~amps ~gains with
  | Some a1 -> check_bool "p1db in the textbook range" true (a1 > 0.5 && a1 < 0.75)
  | None -> Alcotest.fail "compression_from_curve returned None");
  (* a linear device never compresses: typed None *)
  check_bool "linear never compresses" true
    (M.compression_from_curve ~amps ~gains:(Array.map (fun _ -> 2.0) amps)
    = None)

(* --------------------------------------------------- measure catalogue -- *)

let test_measure_parse_fixpoint () =
  List.iter
    (fun s ->
      let m = Measure.parse s in
      check_str ("canonical " ^ s) (Measure.to_string m)
        (Measure.to_string (Measure.parse (Measure.to_string m))))
    [
      "gain@1meg"; "gain_db@1e6"; "bw3db"; "ripple@1k..100k";
      "stopband@2meg..10meg"; "thd"; "fund"; "harm_db@3"; "dc_power";
      "vdc@out"; "idc@V1"; "v_end"; "v_min"; "v_max"; "v_swing";
    ];
  (* engineering suffixes normalize to %.9g numbers *)
  check_str "suffix canonicalized" "gain@1000000" (Measure.to_string (Measure.parse "gain@1meg"));
  List.iter
    (fun s ->
      check_bool ("rejects " ^ s) true
        (match Measure.parse s with
        | exception Measure.Parse_error _ -> true
        | _ -> false))
    [ "bogus"; "gain"; "bw3db@1k"; "ripple@5"; "stopband@10..2"; "harm_db@-1" ]

let ac_payload =
  {|{"status":"ok","analysis":"ac","engine":"ac","certificate":"none","newton":0,"krylov":0,"data":{"freq":[1000,10000,100000],"mag":[1,0.707,0.1]}}|}

let test_measure_eval_payloads () =
  (match Measure.eval_string (Measure.parse "gain@1e4") ac_payload with
  | Some g -> checkf 1e-9 "ac gain" 0.707 g
  | None -> Alcotest.fail "ac gain eval failed");
  (* wrong analysis kind: None *)
  check_bool "dc measure on ac payload" true
    (Measure.eval_string (Measure.parse "vdc@out") ac_payload = None);
  (* failed payloads never evaluate *)
  check_bool "failed payload" true
    (Measure.eval_string (Measure.parse "gain@1e4")
       {|{"status":"failed","analysis":"ac","cause":"x"}|}
    = None);
  let dc =
    {|{"status":"ok","analysis":"dc","engine":"dc","certificate":"certified","newton":3,"krylov":0,"data":{"v(out)":0.5,"i(V1)":-0.0005,"power":0.0005}}|}
  in
  (match Measure.eval_string (Measure.parse "vdc@out") dc with
  | Some v -> checkf 1e-12 "vdc" 0.5 v
  | None -> Alcotest.fail "vdc eval failed");
  (match Measure.eval_string (Measure.parse "dc_power") dc with
  | Some p -> checkf 1e-12 "dc_power" 5e-4 p
  | None -> Alcotest.fail "dc_power eval failed");
  let hb =
    {|{"status":"suspect","analysis":"shooting","engine":"shooting","certificate":"suspect","newton":9,"krylov":4,"data":{"harmonics":[0.01,1.0,0.1,0.01]}}|}
  in
  (* shooting payloads satisfy hb measures; suspect still evaluates *)
  (match Measure.eval_string (Measure.parse "thd") hb with
  | Some t -> checkf 1e-9 "thd" (sqrt (0.01 +. 0.0001)) t
  | None -> Alcotest.fail "thd eval failed");
  match Measure.eval_string (Measure.parse "harm_db@2") hb with
  | Some d -> checkf 1e-9 "harm_db" (-20.0) d
  | None -> Alcotest.fail "harm_db eval failed"

(* ------------------------------------------------------- spec language -- *)

let test_spec_roundtrip () =
  let clauses =
    [
      "target:gain@1meg=0.5~0.05";
      "stopband@2meg..10meg>=40";
      "ripple@1k..100k<=0.5";
    ]
  in
  let s = Spec.of_strings clauses in
  (* canonical rendering is a fixpoint *)
  Alcotest.(check (list string))
    "roundtrip" (Spec.to_strings s)
    (Spec.to_strings (Spec.of_strings (Spec.to_strings s)));
  check_int "distinct measures" 3 (List.length (Spec.measures s));
  (* units normalize: 2meg..10meg becomes plain numbers *)
  check_bool "suffix normalized" true
    (List.mem "stopband@2000000..10000000>=40" (Spec.to_strings s));
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ bad) true
        (match Spec.of_strings [ bad ] with
        | exception Spec.Parse_error _ -> true
        | _ -> false))
    [ "gain@1k"; "target:gain@1k=1"; "minimize:"; "target:gain@1k=1~0" ];
  (* two goals is a spec error *)
  check_bool "two goals rejected" true
    (match Spec.of_strings [ "minimize:dc_power"; "maximize:vdc@out" ] with
    | exception Spec.Parse_error _ -> true
    | _ -> false)

let test_spec_score () =
  let s = Spec.of_strings [ "minimize:dc_power"; "vdc@out>=0.4" ] in
  let lookup values m =
    Option.join (List.assoc_opt (Measure.to_string m) values)
  in
  (* feasible: penalty is just the objective *)
  let sc = Spec.score s (lookup [ ("dc_power", Some 2.0); ("vdc@out", Some 0.5) ]) in
  checkf 1e-9 "feasible penalty" 2.0 sc.Spec.penalty;
  check_bool "feasible" true sc.Spec.feasible;
  check_bool "met" true sc.Spec.met;
  check_int "verdicts goal-first" 2 (List.length sc.Spec.verdicts);
  (* violated constraint: weighted, normalized by max(1,|limit|) *)
  let sc = Spec.score s (lookup [ ("dc_power", Some 2.0); ("vdc@out", Some 0.3) ]) in
  checkf 1e-6 "violation penalty" (2.0 +. (Spec.default_weight *. 0.1)) sc.Spec.penalty;
  check_bool "not met" false sc.Spec.met;
  (match (List.nth sc.Spec.verdicts 1).Spec.v_margin with
  | Some m -> checkf 1e-9 "negative margin" (-0.1) m
  | None -> Alcotest.fail "constraint margin missing");
  (* unevaluable measure poisons the point *)
  let sc = Spec.score s (lookup [ ("vdc@out", Some 0.5) ]) in
  check_bool "unevaluable is infinite" true (sc.Spec.penalty = infinity);
  (* target-with-tolerance goal gates met *)
  let t = Spec.of_strings [ "target:vdc@out=0.5~0.01" ] in
  check_bool "target met" true
    (Spec.score t (lookup [ ("vdc@out", Some 0.505) ])).Spec.met;
  check_bool "target missed" false
    (Spec.score t (lookup [ ("vdc@out", Some 0.53) ])).Spec.met

(* ---------------------------------------------------------- optimizers -- *)

let qcheck_bowl_convergence =
  QCheck.Test.make ~count:30 ~name:"optimizers find a quadratic bowl minimum"
    QCheck.(triple bool (float_range 0.1 0.9) (float_range 0.1 0.9))
    (fun (use_nm, cx, cy) ->
      let f x = ((x.(0) -. cx) ** 2.0) +. ((x.(1) -. cy) ** 2.0) in
      let lo = [| 0.0; 0.0 |] and hi = [| 1.0; 1.0 |] in
      let options = { Optim.default_options with max_evals = 500; tol_x = 1e-4 } in
      let r =
        if use_nm then Optim.nelder_mead ~options ~lo ~hi ~f [| 0.5; 0.5 |]
        else Optim.pattern_search ~options ~lo ~hi ~f [| 0.5; 0.5 |]
      in
      r.Optim.reason = Optim.Converged
      && Float.abs (r.Optim.best_x.(0) -. cx) < 0.02
      && Float.abs (r.Optim.best_x.(1) -. cy) < 0.02)

let test_rosenbrock () =
  let f x =
    (100.0 *. ((x.(1) -. (x.(0) *. x.(0))) ** 2.0)) +. ((1.0 -. x.(0)) ** 2.0)
  in
  let options =
    { Optim.max_evals = 2000; tol_x = 1e-7; tol_f = 1e-12; init_step = 0.1 }
  in
  let r =
    Optim.nelder_mead ~options ~lo:[| -2.0; -2.0 |] ~hi:[| 2.0; 2.0 |] ~f
      [| -1.0; 1.0 |]
  in
  check_bool "reaches the banana valley floor" true (r.Optim.best_f < 1e-4);
  check_bool "near (1,1)" true
    (Float.abs (r.Optim.best_x.(0) -. 1.0) < 0.05
    && Float.abs (r.Optim.best_x.(1) -. 1.0) < 0.1)

let test_box_constraint () =
  (* unconstrained minimum at x=5 lies outside the box: the optimizer
     must settle on the wall, never evaluate past it *)
  let outside = ref false in
  let f x =
    if x.(0) > 1.0 +. 1e-12 then outside := true;
    (x.(0) -. 5.0) ** 2.0
  in
  let r = Optim.nelder_mead ~lo:[| 0.0 |] ~hi:[| 1.0 |] ~f [| 0.2 |] in
  check_bool "never leaves the box" false !outside;
  checkf 1e-2 "pinned to the wall" 1.0 r.Optim.best_x.(0);
  let r = Optim.pattern_search ~lo:[| 0.0 |] ~hi:[| 1.0 |] ~f [| 0.2 |] in
  checkf 1e-2 "pattern pinned to the wall" 1.0 r.Optim.best_x.(0)

let test_budget_and_stop () =
  let evals = ref 0 in
  let f x =
    incr evals;
    x.(0) *. x.(0)
  in
  let options = { Optim.default_options with max_evals = 7 } in
  let r = Optim.nelder_mead ~options ~lo:[| -1.0 |] ~hi:[| 1.0 |] ~f [| 0.9 |] in
  check_bool "budget outcome" true (r.Optim.reason = Optim.Budget_exhausted);
  check_int "budget respected" 7 !evals;
  (* stop_when short-circuits as soon as the goal is attained *)
  let r =
    Optim.nelder_mead
      ~stop_when:(fun v -> v < 0.5)
      ~lo:[| -1.0 |] ~hi:[| 1.0 |]
      ~f:(fun x -> x.(0) *. x.(0))
      [| 0.9 |]
  in
  check_bool "stop_when converges early" true
    (r.Optim.reason = Optim.Converged && r.Optim.evaluations <= 3)

(* ------------------------------------------------------ the closed loop -- *)

let divider_deck =
  "* resistive divider for the optimize loop tests\n\
   .param R1=5k\n\
   V1 in 0 DC 1\n\
   R1 in out {R1}\n\
   R2 out 0 1k\n\
   .end\n"

let loop_cfg () =
  {
    B.Runner.deck_text = divider_deck;
    node = "out";
    domains = 1;
    budget = None;
    tol_scale = 1.0;
    ordering = Rfkit_struct.Order.Natural;
    stats = false;
    deadline = None;
    grace = 2.0;
  }

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Printf.sprintf "_opt_test_cache_%d_%d" (Unix.getpid ()) !n in
    if Sys.file_exists d then () else Unix.mkdir d 0o755;
    d

(* vdc(out) = 1k/(R1+1k): the target 0.5 V sits at R1 = 1k *)
let divider_spec = Spec.of_strings [ "target:vdc@out=0.5~0.002" ]
let divider_vars = [ { Loop.v_name = "R1"; v_lo = 100.0; v_hi = 10e3; v_init = 5e3 } ]

let run_loop ?journal ?replay ~cache () =
  let buf = Buffer.create 512 in
  let telemetry = B.Telemetry.create ~progress:false ~total:100 () in
  let outcome =
    Loop.run (loop_cfg ()) ~cache ~telemetry ?journal ?replay
      ~emit:(fun l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n')
      ~spec:divider_spec ~analysis:B.Spec.Dc divider_vars
  in
  B.Telemetry.close telemetry;
  (outcome, Buffer.contents buf)

let test_loop_converges_and_rerun_identical () =
  Deadline.clear_interrupt ();
  let dir = fresh_dir () in
  let cold, trace_cold = run_loop ~cache:(B.Cache.create ~dir ()) () in
  (match cold.Loop.o_best with
  | Some b ->
      check_bool "spec met" true b.Loop.e_score.Spec.met;
      checkf 60.0 "found R1 near 1k" 1000.0 (List.assoc "R1" b.Loop.e_params)
  | None -> Alcotest.fail "no best eval");
  check_bool "typed outcome" true (cold.Loop.o_result <> None);
  (* warm rerun: byte-identical trace, all evals served by the cache *)
  let warm_cache = B.Cache.create ~dir () in
  let warm, trace_warm = run_loop ~cache:warm_cache () in
  check_str "cold vs warm trace byte-identical" trace_cold trace_warm;
  let s = B.Cache.stats warm_cache in
  check_int "warm rerun misses nothing" 0 s.B.Cache.misses;
  check_bool "warm rerun all hits" true (s.B.Cache.hits = warm.Loop.o_evals)

let test_loop_interrupt_and_resume () =
  Deadline.clear_interrupt ();
  let dir = fresh_dir () in
  (* uninterrupted baseline *)
  let _, trace_full = run_loop ~cache:(B.Cache.create ~enabled:false ~dir ()) () in
  (* killed after 2 evals: outcome interrupted, journal kept *)
  let run = "opt-resume-test" in
  let cache = B.Cache.create ~dir () in
  let journal = B.Journal.create ~dir ~run ~total:100 in
  Faults.arm_process { Faults.process_none with interrupt_after = Some 2 };
  let killed, trace_part = run_loop ~journal ~cache () in
  Faults.disarm_process ();
  Deadline.clear_interrupt ();
  check_bool "flagged interrupted" true killed.Loop.o_interrupted;
  check_bool "no optimizer verdict yet" true (killed.Loop.o_result = None);
  check_int "two evals before the kill" 2 killed.Loop.o_evals;
  B.Journal.close journal;
  check_bool "journal kept" true (B.Journal.exists ~dir ~run);
  (* resume: journaled evals replay, the search continues, and the final
     trace equals the uninterrupted run's byte for byte *)
  let replay =
    match B.Journal.load ~dir ~run with
    | Some r -> r
    | None -> Alcotest.fail "no replay"
  in
  let resumed, trace_resumed = run_loop ~replay ~cache () in
  check_bool "resume completes" true (not resumed.Loop.o_interrupted);
  check_bool "resume picks up the partial trace" true
    (String.length trace_part > 0
    && String.sub trace_resumed 0 (String.length trace_part) = trace_part);
  check_str "resumed trace byte-identical to uninterrupted" trace_full
    trace_resumed

let test_loop_run_hash_stability () =
  let cfg = loop_cfg () in
  let options = Optim.default_options in
  let h ~max_evals =
    Loop.run_hash cfg ~spec:divider_spec ~analysis:B.Spec.Dc
      ~algo:Loop.Nelder_mead
      ~options:{ options with Optim.max_evals }
      ~weight:Spec.default_weight divider_vars
  in
  (* a bigger budget must find the same journal... *)
  check_str "budget-independent" (h ~max_evals:50) (h ~max_evals:500);
  (* ...but any trajectory-shaping change must not *)
  let other =
    Loop.run_hash cfg ~spec:divider_spec ~analysis:B.Spec.Dc
      ~algo:Loop.Pattern_search ~options ~weight:Spec.default_weight
      divider_vars
  in
  check_bool "algo-dependent" true (other <> h ~max_evals:50)

let test_var_grammar () =
  let v = Loop.parse_var "R1=1k:10k:2k" in
  check_str "name" "R1" v.Loop.v_name;
  checkf 1e-9 "lo" 1e3 v.Loop.v_lo;
  checkf 1e-9 "init" 2e3 v.Loop.v_init;
  checkf 1e-9 "midpoint default" 5.5e3 (Loop.parse_var "R1=1k:10k").Loop.v_init;
  List.iter
    (fun bad ->
      check_bool ("rejects " ^ bad) true
        (match Loop.parse_var bad with
        | exception Loop.Parse_error _ -> true
        | _ -> false))
    [ "R1"; "R1=1k"; "=1:2"; "R1=10k:1k"; "R1=1k:10k:50k"; "R1=a:b" ]

let suite =
  [
    ( "opt.measures",
      [
        Alcotest.test_case "gain_at edges" `Quick test_gain_at_edges;
        QCheck_alcotest.to_alcotest qcheck_bw3db_interpolates;
        Alcotest.test_case "bw3db edges" `Quick test_bw3db_edges;
        Alcotest.test_case "band measures" `Quick test_band_measures;
        Alcotest.test_case "compression curve" `Quick test_compression_curve;
        Alcotest.test_case "parse fixpoint" `Quick test_measure_parse_fixpoint;
        Alcotest.test_case "payload evaluation" `Quick test_measure_eval_payloads;
      ] );
    ( "opt.spec",
      [
        Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
        Alcotest.test_case "scoring" `Quick test_spec_score;
      ] );
    ( "opt.optim",
      [
        QCheck_alcotest.to_alcotest qcheck_bowl_convergence;
        Alcotest.test_case "rosenbrock" `Quick test_rosenbrock;
        Alcotest.test_case "box constraint" `Quick test_box_constraint;
        Alcotest.test_case "budget and stop_when" `Quick test_budget_and_stop;
        Alcotest.test_case "var grammar" `Quick test_var_grammar;
      ] );
    ( "opt.loop",
      [
        Alcotest.test_case "converges; warm rerun identical" `Quick
          test_loop_converges_and_rerun_identical;
        Alcotest.test_case "interrupt and resume" `Quick
          test_loop_interrupt_and_resume;
        Alcotest.test_case "run-hash stability" `Quick
          test_loop_run_hash_stability;
      ] );
  ]
