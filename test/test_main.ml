let () = Alcotest.run "rfkit" (Test_la.suite @ Test_circuit.suite @ Test_rf.suite @ Test_noise.suite @ Test_em.suite @ Test_rom.suite @ Test_circuits.suite @ Test_integration.suite @ Test_lint.suite)
