(* Tests for the solver supervisor: typed outcomes, retry ladders,
   budgets, and the deterministic fault-injection hooks.

   Every case arms a Faults plan, runs a real engine against a real
   circuit, and asserts on the structured report: which rung won, what
   each failed attempt recorded, and that fail-fast causes abort the
   ladder instead of burning budget. *)

open Rfkit_la
open Rfkit_circuit
open Rfkit_solve

(* stiff diode ladder: needs several Newton iterations from x = 0, so
   injected faults at chosen attempts/iterations actually land *)
let diode_ladder () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "vdd" "0" (Wave.Dc 5.0);
  Netlist.resistor nl "R1" "vdd" "a" 10.0;
  Netlist.diode nl "D1" "a" "b" ~is:1e-16 ();
  Netlist.diode nl "D2" "b" "c" ~is:1e-16 ();
  Netlist.diode nl "D3" "c" "0" ~is:1e-16 ();
  Mna.build nl

let with_plan plan f =
  Faults.arm plan;
  Fun.protect ~finally:Faults.disarm f

let strategy = Alcotest.testable
    (fun ppf s -> Format.pp_print_string ppf (Supervisor.strategy_name s))
    (fun a b -> Supervisor.strategy_name a = Supervisor.strategy_name b)

let cause_str c = Supervisor.cause_to_string c

let attempt_causes (attempts : Supervisor.attempt list) =
  List.map
    (fun (a : Supervisor.attempt) -> Option.map cause_str a.Supervisor.cause)
    attempts

(* check a solved DC point is physical: node a sits near 2.74 V *)
let check_solution c (x : Vec.t) =
  Alcotest.(check bool)
    (Printf.sprintf "v(a) = %.3f V plausible" x.(Mna.node c "a"))
    true
    (x.(Mna.node c "a") > 2.0 && x.(Mna.node c "a") < 3.5)

(* ------------------------------------------------ recovery ladder rungs *)

let solve_with_singulars c k =
  with_plan { Faults.none with engine = Some "dc"; singular_attempts = k }
    (fun () -> Dc.solve_outcome c)

let test_recovers_via_damping () =
  let c = diode_ladder () in
  match solve_with_singulars c 1 with
  | Supervisor.Failed f -> Alcotest.fail (Supervisor.failure_to_string f)
  | Supervisor.Converged (x, r) ->
      check_solution c x;
      (match r.Supervisor.strategy with
      | Supervisor.Tighten_damping _ -> ()
      | s -> Alcotest.failf "won via %s, expected damping" (Supervisor.strategy_name s));
      Alcotest.(check int) "two attempts" 2 (List.length r.Supervisor.attempts);
      Alcotest.(check (list (option string)))
        "first attempt records the singular Jacobian"
        [ Some "singular Jacobian"; None ]
        (attempt_causes r.Supervisor.attempts)

let test_recovers_via_gmin () =
  let c = diode_ladder () in
  match solve_with_singulars c 2 with
  | Supervisor.Failed f -> Alcotest.fail (Supervisor.failure_to_string f)
  | Supervisor.Converged (x, r) ->
      check_solution c x;
      Alcotest.(check strategy)
        "won via gmin stepping" (Supervisor.Gmin_stepping 8) r.Supervisor.strategy;
      Alcotest.(check int) "three attempts" 3 (List.length r.Supervisor.attempts)

let test_recovers_via_source_ramp () =
  let c = diode_ladder () in
  match solve_with_singulars c 3 with
  | Supervisor.Failed f -> Alcotest.fail (Supervisor.failure_to_string f)
  | Supervisor.Converged (x, r) ->
      check_solution c x;
      Alcotest.(check strategy)
        "won via source ramping" (Supervisor.Source_ramping 8) r.Supervisor.strategy;
      Alcotest.(check int) "four attempts" 4 (List.length r.Supervisor.attempts)

let test_ladder_exhausted () =
  let c = diode_ladder () in
  match solve_with_singulars c 99 with
  | Supervisor.Converged _ -> Alcotest.fail "cannot converge with every rung sabotaged"
  | Supervisor.Failed f ->
      Alcotest.(check string)
        "final cause" "singular Jacobian" (cause_str f.Supervisor.cause);
      Alcotest.(check int)
        "every rung ran and is on the trace" 4
        (List.length f.Supervisor.f_attempts)

(* ------------------------------------------------------ NaN fail-fast *)

let test_nan_fail_fast () =
  let c = diode_ladder () in
  let outcome =
    with_plan { Faults.none with engine = Some "dc"; nan_at = Some (2, 1) }
      (fun () -> Dc.solve_outcome c)
  in
  match outcome with
  | Supervisor.Converged _ -> Alcotest.fail "NaN injection must fail the solve"
  | Supervisor.Failed f ->
      (match f.Supervisor.cause with
      | Supervisor.Non_finite { iter; index } ->
          Alcotest.(check int) "offending Newton iteration" 2 iter;
          Alcotest.(check int) "offending unknown index" 1 index
      | c -> Alcotest.failf "expected Non_finite, got %s" (cause_str c));
      Alcotest.(check int)
        "fail-fast: the ladder stopped after one attempt" 1
        (List.length f.Supervisor.f_attempts)

(* --------------------------------------------------------- budgets *)

let test_iteration_budget_exhaustion () =
  let c = diode_ladder () in
  let budget =
    { Supervisor.attempt_iterations = 3; total_iterations = 5; wall_clock = 300.0 }
  in
  match Dc.solve_outcome ~budget c with
  | Supervisor.Converged (_, r) ->
      Alcotest.failf "5 iterations cannot solve this deck (won via %s)"
        (Supervisor.strategy_name r.Supervisor.strategy)
  | Supervisor.Failed f ->
      (match f.Supervisor.cause with
      | Supervisor.Budget_exhausted Supervisor.Iterations -> ()
      | c -> Alcotest.failf "expected iteration-budget exhaustion, got %s" (cause_str c));
      Alcotest.(check bool)
        "trace holds the attempts that burned the budget" true
        (List.length f.Supervisor.f_attempts >= 1);
      List.iter
        (fun (a : Supervisor.attempt) ->
          Alcotest.(check bool)
            "each traced attempt stayed within its cap" true
            (a.Supervisor.stats.Supervisor.iterations <= 3))
        f.Supervisor.f_attempts

let test_wall_clock_budget () =
  let c = diode_ladder () in
  (* negative: "already exhausted" without racing the clock granularity *)
  let budget =
    { Supervisor.default_budget with Supervisor.wall_clock = -1.0 }
  in
  match Dc.solve_outcome ~budget c with
  | Supervisor.Converged _ -> Alcotest.fail "a zero wall-clock budget must fail"
  | Supervisor.Failed f -> (
      match f.Supervisor.cause with
      | Supervisor.Budget_exhausted Supervisor.Wall_clock -> ()
      | c -> Alcotest.failf "expected wall-clock exhaustion, got %s" (cause_str c))

(* ------------------------------------------- krylov stall (HB engine) *)

let rectifier () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.sine 2.0 10e6);
  Netlist.resistor nl "RS" "in" "a" 50.0;
  Netlist.diode nl "D1" "a" "out" ~is:1e-14 ();
  Netlist.resistor nl "RL" "out" "0" 10e3;
  Netlist.capacitor nl "CL" "out" "0" 100e-12;
  Mna.build nl

let test_krylov_stall_recovery () =
  let c = rectifier () in
  let options =
    { Rfkit_rf.Hb.default_options with Rfkit_rf.Hb.solver = Rfkit_rf.Hb.Matrix_free_gmres }
  in
  let outcome =
    with_plan { Faults.none with engine = Some "hb"; krylov_stall_attempts = 1 }
      (fun () -> Rfkit_rf.Hb.solve_outcome ~options c ~freq:10e6)
  in
  match outcome with
  | Supervisor.Failed f -> Alcotest.fail (Supervisor.failure_to_string f)
  | Supervisor.Converged (_, r) ->
      (match attempt_causes r.Supervisor.attempts with
      | Some first :: _ ->
          Alcotest.(check bool)
            (Printf.sprintf "first attempt stalled in GMRES: %s" first)
            true
            (String.length first >= 6 && String.sub first 0 6 = "Krylov")
      | _ -> Alcotest.fail "first attempt should carry a Krylov stall cause");
      Alcotest.(check bool)
        "recovered on a later rung" true
        (List.length r.Supervisor.attempts >= 2);
      Alcotest.(check bool)
        "krylov iterations surfaced in the report" true
        (r.Supervisor.stats.Supervisor.krylov_iterations > 0)

(* ------------------------------------------------------- determinism *)

(* everything observable except wall-clock times *)
let outcome_signature (o : Vec.t Supervisor.outcome) =
  match o with
  | Supervisor.Converged (x, r) ->
      Printf.sprintf "C %s %s [%s] total=%d x=%s"
        r.Supervisor.engine
        (Supervisor.strategy_name r.Supervisor.strategy)
        (String.concat ";"
           (List.map (Option.value ~default:"-") (attempt_causes r.Supervisor.attempts)))
        r.Supervisor.total_iterations
        (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.12g") x)))
  | Supervisor.Failed f ->
      Printf.sprintf "F %s %s [%s]" f.Supervisor.f_engine
        (cause_str f.Supervisor.cause)
        (String.concat ";"
           (List.map (Option.value ~default:"-") (attempt_causes f.Supervisor.f_attempts)))

let qcheck_deterministic =
  QCheck.Test.make ~count:20 ~name:"supervisor outcome is deterministic under a fixed fault plan"
    QCheck.(int_range 0 5)
    (fun k ->
      let c = diode_ladder () in
      let run () = outcome_signature (solve_with_singulars c k) in
      String.equal (run ()) (run ()))

(* ----------------------------------------------------------- rendering *)

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_failure_rendering () =
  let c = diode_ladder () in
  match solve_with_singulars c 99 with
  | Supervisor.Converged _ -> Alcotest.fail "must fail"
  | Supervisor.Failed f ->
      let s = Supervisor.failure_to_string f in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "rendering mentions %S" needle)
            true (contains s needle))
        [ "attempt 1"; "base"; "gmin-stepping"; "source-ramping"; "singular Jacobian" ]

let suite =
  [
    ( "solve.supervisor",
      [
        Alcotest.test_case "singular x1 -> damping rung recovers" `Quick
          test_recovers_via_damping;
        Alcotest.test_case "singular x2 -> gmin rung recovers" `Quick
          test_recovers_via_gmin;
        Alcotest.test_case "singular x3 -> source-ramp rung recovers" `Quick
          test_recovers_via_source_ramp;
        Alcotest.test_case "all rungs sabotaged -> Failed with full trace" `Quick
          test_ladder_exhausted;
        Alcotest.test_case "injected NaN fails fast with the unknown index" `Quick
          test_nan_fail_fast;
        Alcotest.test_case "iteration budget exhaustion carries the trace" `Quick
          test_iteration_budget_exhaustion;
        Alcotest.test_case "zero wall-clock budget trips immediately" `Quick
          test_wall_clock_budget;
        Alcotest.test_case "HB recovers from an injected Krylov stall" `Quick
          test_krylov_stall_recovery;
        Alcotest.test_case "failure rendering names every rung" `Quick
          test_failure_rendering;
      ] );
    ( "solve.properties",
      List.map QCheck_alcotest.to_alcotest [ qcheck_deterministic ] );
  ]
