(* Tests for the rfkit_rf steady-state and multi-time engines. The key
   validation pattern is cross-engine agreement: the same circuit solved by
   AC, HB, shooting, MFDTD, HS, MMFT and transient must tell one story. *)

open Rfkit_la
open Rfkit_circuit
open Rfkit_rf

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --------------------------------------------------------------- fixtures *)

(* series RC low-pass driven by a sine *)
let rc_lowpass ~ampl ~freq =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.sine ampl freq);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 1e-9;
  Mna.build nl

(* diode half-wave rectifier with RC load *)
let rectifier ~freq =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.sine 2.0 freq);
  Netlist.diode nl "D1" "in" "out" ();
  Netlist.resistor nl "RL" "out" "0" 10e3;
  Netlist.capacitor nl "CL" "out" "0" 1e-12;
  Mna.build nl

(* van der Pol oscillator: LC tank with cubic negative conductance *)
let vdp ?(g1 = -1e-3) ?(g3 = 1e-3) () =
  let nl = Netlist.create () in
  Netlist.capacitor nl "C1" "tank" "0" 1e-9;
  Netlist.inductor nl "L1" "tank" "0" 1e-6;
  Netlist.cubic_conductor nl "GN" "tank" "0" ~g1 ~g3;
  Mna.build nl

(* switching mixer: multiplying transconductor (behavioral Gilbert cell)
   commutated by an LO square wave, RF sine input, RC output filter *)
let mixer ~f_rf ~f_lo =
  let nl = Netlist.create () in
  Netlist.vsource nl "VRF" "rf" "0" (Wave.sine 0.1 f_rf);
  Netlist.vsource nl "VLO" "lo" "0" (Wave.square 1.0 f_lo);
  Netlist.mult_vccs nl "MIX" "mix" "0" ~a:("rf", "0") ~b:("lo", "0") ~k:2e-3;
  Netlist.resistor nl "RM" "mix" "0" 500.0;
  Netlist.capacitor nl "CM" "mix" "0" 10e-12;
  Mna.build nl

let expected_rc_transfer ~freq =
  (* H = 1/(1 + j w R C) with R = 1k, C = 1n *)
  let w = 2.0 *. Float.pi *. freq in
  let rc = 1e3 *. 1e-9 in
  Cx.( /: ) Cx.one (Cx.make 1.0 (w *. rc))

(* ----------------------------------------------------------------- Grid *)

let test_grid_diff_sine () =
  let n = 32 and period = 2.0 *. Float.pi in
  let samples = Vec.init n (fun i -> sin (2.0 *. Float.pi *. float_of_int i /. float_of_int n)) in
  let d = Grid.diff_samples ~period samples in
  for i = 0 to n - 1 do
    let t = period *. float_of_int i /. float_of_int n in
    check_float ~eps:1e-9 (Printf.sprintf "cos at %d" i) (cos t) d.(i)
  done

let test_grid_harmonic () =
  let n = 64 in
  let samples =
    Vec.init n (fun i ->
        let t = float_of_int i /. float_of_int n in
        0.5 +. (3.0 *. cos (2.0 *. Float.pi *. 2.0 *. t)))
  in
  check_float ~eps:1e-9 "dc" 0.5 (Grid.amplitude samples 0);
  check_float ~eps:1e-9 "second harmonic" 3.0 (Grid.amplitude samples 2);
  check_float ~eps:1e-9 "empty harmonic" 0.0 (Grid.amplitude samples 3)

(* ------------------------------------------------------------------- HB *)

let test_hb_linear_matches_ac () =
  let freq = 159.155e3 in
  (* near the RC corner *)
  let c = rc_lowpass ~ampl:1.0 ~freq in
  let res = Hb.solve c ~freq in
  let h = expected_rc_transfer ~freq in
  check_float ~eps:1e-6 "fundamental amplitude" (Cx.abs h)
    (Hb.harmonic_amplitude res "out" 1);
  check_float ~eps:1e-9 "no second harmonic" 0.0 (Hb.harmonic_amplitude res "out" 2)

let test_hb_gmres_matches_direct () =
  let freq = 1e6 in
  let c = rectifier ~freq in
  let direct = Hb.solve c ~freq in
  let gmres =
    Hb.solve
      ~options:{ Hb.default_options with solver = Hb.Matrix_free_gmres }
      c ~freq
  in
  check_float ~eps:1e-6 "dc output agrees"
    (Hb.harmonic_amplitude direct "out" 0)
    (Hb.harmonic_amplitude gmres "out" 0);
  check_float ~eps:1e-6 "fundamental agrees"
    (Hb.harmonic_amplitude direct "out" 1)
    (Hb.harmonic_amplitude gmres "out" 1);
  Alcotest.(check bool) "gmres actually iterated" true (gmres.Hb.gmres_iters_total > 0)

let test_hb_rectifier_dc () =
  let c = rectifier ~freq:1e6 in
  let res = Hb.solve c ~freq:1e6 in
  (* half-wave rectified 2 V sine into light load: positive DC well below peak *)
  let dc = Grid.harmonic (Hb.waveform res "out") 0 in
  Alcotest.(check bool)
    (Printf.sprintf "dc %.3f plausible" dc.Cx.re)
    true
    (dc.Cx.re > 0.2 && dc.Cx.re < 1.4);
  (* distortion present: second harmonic nonzero *)
  Alcotest.(check bool) "nonlinearity generates harmonics" true
    (Hb.harmonic_amplitude res "out" 2 > 1e-3)

let test_hb_residual_of_solution () =
  let freq = 2e6 in
  let c = rectifier ~freq in
  let res = Hb.solve c ~freq in
  Alcotest.(check bool) "residual small" true
    (Hb.residual_norm c ~freq res.Hb.samples < 1e-8)

(* ------------------------------------------------------------- Shooting *)

let test_shooting_matches_hb () =
  let freq = 1e6 in
  let c = rectifier ~freq in
  let hb = Hb.solve c ~freq in
  let sh =
    Shooting.solve
      ~options:{ Shooting.default_options with steps_per_period = 400 }
      c ~freq
  in
  let v_hb = Grid.amplitude (Hb.waveform hb "out") 0 in
  let v_sh = Grid.amplitude (Shooting.waveform sh "out") 0 in
  check_float ~eps:2e-2 "dc agreement" v_hb v_sh;
  check_float ~eps:2e-2 "fundamental agreement"
    (Grid.amplitude (Hb.waveform hb "out") 1)
    (Grid.amplitude (Shooting.waveform sh "out") 1)

let test_shooting_monodromy_stable () =
  let freq = 1e6 in
  let c = rc_lowpass ~ampl:1.0 ~freq in
  let sh = Shooting.solve c ~freq in
  (* driven dissipative circuit: all Floquet multipliers inside unit circle *)
  let ev = Eig.eigenvalues_sorted sh.Shooting.monodromy in
  Alcotest.(check bool) "multipliers stable" true (Cx.abs ev.(0) < 1.0)

let test_vdp_autonomous () =
  let c = vdp () in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (1e-6 *. 1e-9)) in
  let res =
    Shooting.solve_autonomous
      ~options:{ Shooting.default_options with steps_per_period = 400; warm_periods = 30 }
      c ~freq_guess:f0
      ~kick:(fun x -> x.(0) <- 0.3)
  in
  (* period near the tank resonance *)
  check_float ~eps:(0.05 /. f0) "period" (1.0 /. f0) res.Shooting.period;
  (* describing-function amplitude sqrt(-4 g1 / (3 g3)) = 2/sqrt(3) *)
  let a = Grid.amplitude (Shooting.waveform res "tank") 1 in
  check_float ~eps:0.08 "limit cycle amplitude" (2.0 /. sqrt 3.0) a;
  (* one Floquet multiplier at unity (phase direction) *)
  let ev = Eig.eigenvalues_sorted res.Shooting.monodromy in
  check_float ~eps:3e-2 "unit multiplier" 1.0 (Cx.abs ev.(0))

(* ----------------------------------------------------------------- MPDE *)

let test_mpde_split_wave () =
  let w = Wave.Sum [ Wave.sine 1.0 1e3; Wave.square 2.0 1e9; Wave.Dc 0.5 ] in
  let slow, fast = Mpde.split_wave ~f1:1e3 ~f2:1e9 w in
  check_float "slow at t" (0.5 +. Wave.eval (Wave.sine 1.0 1e3) 1e-4) (Wave.eval slow 1e-4);
  check_float "fast at t" (Wave.eval (Wave.square 2.0 1e9) 0.3e-9) (Wave.eval fast 0.3e-9)

let test_mpde_split_rejects () =
  Alcotest.(check bool) "unalignable frequency rejected" true
    (try
       ignore (Mpde.split_wave ~f1:1e4 ~f2:1e9 (Wave.sine 1.0 7.71e5));
       false
     with Invalid_argument _ -> true)

let test_mpde_diagonal_consistency () =
  (* b^(t, t) = b(t) for a two-tone source *)
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0"
    (Wave.Sum [ Wave.sine 1.0 1e3; Wave.sine 0.3 1e6 ]);
  Netlist.resistor nl "R1" "in" "0" 1e3;
  let c = Mna.build nl in
  List.iter
    (fun t ->
      let b2 = Mpde.eval_b2 c ~f1:1e3 ~f2:1e6 t t in
      let b1 = Mna.eval_b c t in
      check_float ~eps:1e-12 (Printf.sprintf "diag at %g" t) (Vec.norm_inf (Vec.sub b1 b2)) 0.0)
    [ 0.0; 1.23e-4; 7.7e-4 ]

let test_mpde_cost_accounting () =
  let c1 = Mpde.Cost.compare_representations ~separation:1e3 () in
  let c2 = Mpde.Cost.compare_representations ~separation:1e6 () in
  Alcotest.(check bool) "univariate grows with separation" true
    (c2.Mpde.Cost.univariate_samples > c1.Mpde.Cost.univariate_samples * 100);
  Alcotest.(check int) "bivariate constant" c1.Mpde.Cost.bivariate_samples
    c2.Mpde.Cost.bivariate_samples

let test_mpde_reconstruction_error () =
  let err =
    Mpde.Cost.bivariate_reconstruction_error ~n1:64 ~n2:200 ~separation:50.0
      ~rise:0.1
  in
  Alcotest.(check bool) (Printf.sprintf "error %.3g small" err) true (err < 0.05)

(* ---------------------------------------------------------------- MFDTD *)

let test_mfdtd_linear_two_tone () =
  (* linear RC driven by both tones: bivariate solution's mean along each
     axis reproduces the single-tone AC responses *)
  let f1 = 1e3 and f2 = 1e6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Sum [ Wave.sine 1.0 f1; Wave.sine 0.5 f2 ]);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 1e-9;
  let c = Mna.build nl in
  let res =
    Mfdtd.solve
      ~options:{ Mfdtd.default_options with n1 = 8; n2 = 32; tol = 1e-8 }
      c ~f1 ~f2
  in
  let grid = Mfdtd.node_grid res "out" in
  (* slow axis: average over t2 isolates the slow response; BE on 8 points
     is coarse, so compare loosely against |H(f1)| ~ 1 *)
  let slow_wave = Vec.init 8 (fun i1 -> Stats.mean (Mat.row grid i1)) in
  let slow_amp = Grid.amplitude slow_wave 1 in
  let h1 = Cx.abs (expected_rc_transfer ~freq:f1) in
  Alcotest.(check bool)
    (Printf.sprintf "slow amp %.3f vs %.3f" slow_amp h1)
    true
    (Float.abs (slow_amp -. h1) < 0.15)

let test_mfdtd_diagonal_matches_transient () =
  (* small separation so the transient reference is affordable *)
  let f1 = 1e3 and f2 = 50e3 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Sum [ Wave.sine 0.5 f1; Wave.sine 0.5 f2 ]);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.diode nl "D1" "out" "0" ~is:1e-12 ();
  Netlist.resistor nl "R2" "out" "0" 5e3;
  Netlist.capacitor nl "C1" "out" "0" 20e-9;
  let c = Mna.build nl in
  let res =
    Mfdtd.solve
      ~options:{ Mfdtd.default_options with n1 = 24; n2 = 40; tol = 1e-8 }
      c ~f1 ~f2
  in
  (* transient over several slow periods to settle, then compare DC level *)
  let tr = Tran.run c ~t_stop:(4.0 /. f1) ~dt:(1.0 /. f2 /. 60.0) in
  let v_tr = Tran.voltage_trace c tr "out" in
  let n_tr = Array.length v_tr in
  let tail = Array.sub v_tr (n_tr - (n_tr / 4)) (n_tr / 4) in
  let dc_tr = Stats.mean tail in
  let diag = Mfdtd.node_diagonal res "out" ~n:512 in
  let dc_mf = Stats.mean diag in
  check_float ~eps:0.03 "dc agreement" dc_tr dc_mf

(* ------------------------------------------------------------------- HS *)

let test_hs_matches_mfdtd () =
  let f1 = 1e3 and f2 = 1e6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Sum [ Wave.sine 0.5 f1; Wave.sine 0.5 f2 ]);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 1e-9;
  Netlist.cubic_conductor nl "GN" "out" "0" ~g1:1e-4 ~g3:5e-4;
  let c = Mna.build nl in
  let mf =
    Mfdtd.solve
      ~options:{ Mfdtd.default_options with n1 = 12; n2 = 32 }
      c ~f1 ~f2
  in
  let hs =
    Hs.solve ~options:{ Hs.default_options with n1 = 12; steps2 = 32 } c ~f1 ~f2
  in
  let g_mf = Mfdtd.node_grid mf "out" in
  let g_hs = Hs.node_grid hs "out" in
  (* same bivariate solution up to the different fast-axis discretizations *)
  let diff = Mat.max_abs (Mat.sub g_mf g_hs) in
  Alcotest.(check bool) (Printf.sprintf "grids agree (%.3g)" diff) true (diff < 0.05)

(* ----------------------------------------------------------------- MMFT *)

let test_mmft_delay_matrix () =
  (* delay operator must shift band-limited sequences exactly *)
  let k = 3 in
  let period1 = 1.0 in
  let delay = 0.1234 in
  let d = Mmft.delay_matrix ~k ~period1 ~delay in
  let m_count = (2 * k) + 1 in
  let f t = 1.0 +. (2.0 *. cos (2.0 *. Float.pi *. t)) -. (0.7 *. sin (2.0 *. Float.pi *. 3.0 *. t)) in
  let samples = Vec.init m_count (fun m -> f (float_of_int m /. float_of_int m_count)) in
  let shifted = Mat.matvec d samples in
  for m = 0 to m_count - 1 do
    let s = (float_of_int m /. float_of_int m_count) +. delay in
    check_float ~eps:1e-10 (Printf.sprintf "sample %d" m) (f s) shifted.(m)
  done

let test_mmft_mixer_vs_transient () =
  (* moderate separation so the brute-force reference is cheap *)
  let f_rf = 1e3 and f_lo = 40e3 in
  let c = mixer ~f_rf ~f_lo in
  let res =
    Mmft.solve
      ~options:{ Mmft.default_options with slow_harmonics = 3; steps2 = 64 }
      c ~f1:f_rf ~f2:f_lo
  in
  (* reference: long transient + leakage-free demodulation at f_lo + f_rf
     (the window is an integer number of periods of every tone) *)
  let tr = Tran.run c ~t_stop:(3.0 /. f_rf) ~dt:(1.0 /. f_lo /. 64.0) in
  let v = Tran.voltage_trace c tr "mix" in
  let amp_ref =
    Spectrum.demodulate ~times:tr.Tran.times ~values:v ~freq:(f_lo +. f_rf)
      ~window:(1.0 /. f_rf)
  in
  let amp_mmft = Mmft.mix_amplitude res "mix" ~slow:1 ~fast:1 in
  Alcotest.(check bool)
    (Printf.sprintf "mix amplitude %.4g vs transient %.4g" amp_mmft amp_ref)
    true
    (Float.abs (amp_mmft -. amp_ref) < 0.15 *. amp_ref)

(* ------------------------------------------------------------- Envelope *)

let test_envelope_am_tracking () =
  (* true AM through the multiplier: envelope of the output's carrier
     harmonic must track the slow modulating bias (1 + 0.5 sin wm t) *)
  let f_carrier = 1e6 and f_mod = 1e3 in
  let nl = Netlist.create () in
  Netlist.vsource nl "VC" "carrier" "0" (Wave.sine 1.0 f_carrier);
  Netlist.vsource nl "VM" "am" "0"
    (Wave.Sine { ampl = 0.5; freq = f_mod; phase = 0.0; offset = 1.0 });
  Netlist.mult_vccs nl "MOD" "0" "out" ~a:("carrier", "0") ~b:("am", "0") ~k:1e-3;
  Netlist.resistor nl "RO" "out" "0" 1e3;
  Netlist.capacitor nl "CO" "out" "0" 1e-12;
  let c = Mna.build nl in
  let res =
    Envelope.run
      ~options:{ Envelope.steps2 = 32; n1 = 20 }
      c ~f1:f_mod ~f2:f_carrier ~t1_stop:(1.0 /. f_mod)
  in
  let env = Envelope.envelope_magnitude res "out" ~harmonic:1 in
  (* gm * R = 1, so envelope = 1 + 0.5 sin(wm t1) *)
  Array.iteri
    (fun i a ->
      let t = res.Envelope.t1s.(i) in
      let expect = 1.0 +. (0.5 *. sin (2.0 *. Float.pi *. f_mod *. t)) in
      check_float ~eps:0.06 (Printf.sprintf "am tracking %d" i) expect a)
    env

(* ------------------------------------------------------------------ HB2 *)

let test_hb2_linear_two_tone () =
  let f1 = 1e3 and f2 = 1e6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Sum [ Wave.sine 1.0 f1; Wave.sine 0.5 f2 ]);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 1e-9;
  let c = Mna.build nl in
  let res =
    Hb2.solve ~options:{ Hb2.default_options with n1 = 8; n2 = 8 } c ~f1 ~f2
  in
  let h1 = Cx.abs (expected_rc_transfer ~freq:f1) in
  let h2 = Cx.abs (expected_rc_transfer ~freq:f2) in
  check_float ~eps:1e-6 "tone 1 response" h1 (Hb2.mix_amplitude res "out" ~k1:1 ~k2:0);
  check_float ~eps:1e-6 "tone 2 response" (0.5 *. h2)
    (Hb2.mix_amplitude res "out" ~k1:0 ~k2:1);
  check_float ~eps:1e-10 "no intermod in linear circuit" 0.0
    (Hb2.mix_amplitude res "out" ~k1:1 ~k2:1)

let test_hb2_intermodulation () =
  (* cubic nonlinearity generates IM products at k1 +- k2; compare the
     third-order product against the small-signal analytic estimate *)
  let f1 = 1e3 and f2 = 1e6 in
  let a = 0.1 in
  let g1 = 1e-3 and g3 = 1e-4 in
  let r_load = 1e3 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Sum [ Wave.sine a f1; Wave.sine a f2 ]);
  (* current source driven by nonlinear conductor sensing the input *)
  Netlist.cubic_conductor nl "GN" "in" "mid" ~g1 ~g3;
  Netlist.resistor nl "RL" "mid" "0" r_load;
  let c = Mna.build nl in
  let res =
    Hb2.solve ~options:{ Hb2.default_options with n1 = 8; n2 = 8 } c ~f1 ~f2
  in
  (* the 2f2 - f1 like products exist; check IM at (1, 2): amplitude of the
     cubic term (3/4) g3 a^2 a ... loosely: it must be well above floor and
     far below the fundamentals *)
  let fund = Hb2.mix_amplitude res "mid" ~k1:1 ~k2:0 in
  let im = Hb2.mix_amplitude res "mid" ~k1:1 ~k2:2 in
  Alcotest.(check bool) "IM present" true (im > 1e-8);
  Alcotest.(check bool) "IM below fundamental" true (im < 0.1 *. fund)

let test_hb2_spectrum_listing () =
  let f1 = 1e3 and f2 = 1e6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Sum [ Wave.sine 1.0 f1; Wave.sine 0.5 f2 ]);
  Netlist.resistor nl "R1" "in" "0" 1e3;
  let c = Mna.build nl in
  let res =
    Hb2.solve ~options:{ Hb2.default_options with n1 = 4; n2 = 4 } c ~f1 ~f2
  in
  let spurs = Hb2.spectrum res "in" in
  (* both驱动 tones appear at the right frequencies *)
  let has f =
    List.exists
      (fun s -> Float.abs (s.Hb2.freq -. f) < 1.0 && s.Hb2.amplitude > 0.4)
      spurs
  in
  Alcotest.(check bool) "tone 1 listed" true (has f1);
  Alcotest.(check bool) "tone 2 listed" true (has f2)

(* ------------------------------------------------------------------ HBn *)

let test_hbn_matches_hb2 () =
  let f1 = 1e6 and f2 = 1.31e9 in
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Sum [ Wave.sine 0.3 f1; Wave.sine 0.3 f2 ]);
  Netlist.cubic_conductor nl "GN" "in" "mid" ~g1:1e-3 ~g3:2e-4;
  Netlist.resistor nl "RL" "mid" "0" 1e3;
  Netlist.capacitor nl "CL" "mid" "0" 1e-13;
  let c = Mna.build nl in
  let hb2 = Hb2.solve ~options:{ Hb2.default_options with n1 = 8; n2 = 8 } c ~f1 ~f2 in
  let hbn =
    Hbn.solve
      ~options:{ Hbn.dims = [| 8; 8 |]; max_newton = 60; tol = 1e-9; gmres_tol = 1e-12 }
      c ~tones:[| f1; f2 |]
  in
  List.iter
    (fun (k1, k2) ->
      let a2 = Hb2.mix_amplitude hb2 "mid" ~k1 ~k2 in
      let an = Hbn.mix_amplitude hbn "mid" [| k1; k2 |] in
      check_float ~eps:(1e-9 +. (1e-9 *. a2))
        (Printf.sprintf "mix (%d,%d)" k1 k2)
        a2 an)
    [ (1, 0); (0, 1); (2, 1); (1, 2); (3, 0) ]

let test_hbn_three_tone_im3 () =
  (* two closely spaced RF tones through a cubic compressor then an ideal
     mixer: the classic two-tone IM3 test needing a third (LO) tone *)
  let fa = 1e6 and fb = 1.1e6 and flo = 900e6 in
  let nl = Netlist.create () in
  Netlist.vsource nl "VA" "rf" "0" (Wave.Sum [ Wave.sine 0.05 fa; Wave.sine 0.05 fb ]);
  Netlist.vsource nl "VLO" "lo" "0" (Wave.sine 1.0 flo);
  Netlist.cubic_conductor nl "GC" "rf" "cmp" ~g1:1e-3 ~g3:3e-3;
  Netlist.resistor nl "RC" "cmp" "0" 1e3;
  Netlist.mult_vccs nl "MIX" "0" "mix" ~a:("cmp", "0") ~b:("lo", "0") ~k:1e-3;
  Netlist.resistor nl "RM" "mix" "0" 1e3;
  Netlist.capacitor nl "CM" "mix" "0" 1e-13;
  let c = Mna.build nl in
  let res =
    Hbn.solve
      ~options:
        { Hbn.dims = [| 8; 8; 8 |]; max_newton = 60; tol = 1e-10; gmres_tol = 1e-12 }
      c ~tones:[| fa; fb; flo |]
  in
  let up = Hbn.mix_amplitude res "mix" [| 1; 0; 1 |] in
  let im3a = Hbn.mix_amplitude res "mix" [| 2; -1; 1 |] in
  let im3b = Hbn.mix_amplitude res "mix" [| -1; 2; 1 |] in
  Alcotest.(check bool) "upconverted tone present" true (up > 5e-3);
  Alcotest.(check bool) "IM3 present" true (im3a > 1e-7);
  (* the two third-order products are symmetric for equal tone amplitudes *)
  check_float ~eps:(0.01 *. im3a) "IM3 symmetry" im3a im3b;
  Alcotest.(check bool) "IM3 well below carrier" true (im3a < 0.01 *. up)

let test_hbn_memory_scales_with_tones () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "a" "0" (Wave.sine 1.0 1e6);
  Netlist.resistor nl "R1" "a" "b" 1e3;
  Netlist.capacitor nl "C1" "b" "0" 1e-12;
  let c = Mna.build nl in
  let mem d = Hbn.memory_estimate c ~dims:(Array.make d 8) in
  (* each added tone multiplies the state by the per-axis sample count *)
  Alcotest.(check bool) "x8 per tone" true
    (mem 2 = 8 * mem 1 && mem 4 = 8 * mem 3)

(* -------------------------------------------------------------- Spectrum *)

let test_spectrum_dbc () =
  check_float "dbc" (-40.0) (Spectrum.dbc ~carrier:1.0 0.01)

let test_spectrum_transient_sine () =
  let f = 1e4 in
  let times = Array.init 4001 (fun i -> float_of_int i *. 1e-7) in
  let values = Array.map (fun t -> 0.8 *. sin (2.0 *. Float.pi *. f *. t)) times in
  let lines = Spectrum.of_transient ~times ~values ~window:2e-4 ~n_fft:2048 in
  let peak = Spectrum.nearest lines f in
  check_float ~eps:2e-2 "amplitude recovered" 0.8 peak.Spectrum.amplitude;
  check_float ~eps:1e-9 "frequency bin" f peak.Spectrum.freq

(* ------------------------------------------------------------- measures *)

(* tanh limiter stage: gain compression analytically known via the
   describing function of tanh (H1 of tanh(a sin / vsat) ~ a - a^3/4vsat^2):
   1 dB compression at a ~ 0.66 vsat *)
let tanh_stage vsat a =
  let nl = Netlist.create () in
  Netlist.vsource nl "VIN" "in" "0" (Wave.sine a 10e6);
  Netlist.tanh_gm nl "G1" "0" "out" "in" "0" ~gm:1e-3 ~vsat;
  Netlist.resistor nl "RL" "out" "0" 1e3;
  Netlist.capacitor nl "CL" "out" "0" 1e-14;
  Mna.build nl

let test_p1db_of_tanh_limiter () =
  let vsat = 0.3 in
  let p1db =
    match
      Measures.compression_point_1db ~build:(tanh_stage vsat) ~node:"out"
        ~freq:10e6 ()
    with
    | Some a -> a
    | None -> Alcotest.fail "tanh limiter must compress within the scan range"
  in
  (* series expansion predicts ~0.66 vsat; the full tanh compresses a bit
     earlier, so accept 0.55..0.75 vsat *)
  Alcotest.(check bool)
    (Printf.sprintf "P1dB %.3f V vs vsat %.3f" p1db vsat)
    true
    (p1db > 0.55 *. vsat && p1db < 0.8 *. vsat)

(* cubic stage: IIP3 analytically A^2 = (4/3) |g1/g3| *)
let cubic_stage g1 g3 a =
  let nl = Netlist.create () in
  Netlist.vsource nl "VIN" "in" "0"
    (Wave.Sum [ Wave.sine a 10e6; Wave.sine a 11e6 ]);
  (* drive a grounded cubic conductor and observe its current in a load
     via a unity current mirror: simplest is the conductor into a small
     load so feedback is negligible *)
  Netlist.cubic_conductor nl "GN" "in" "out" ~g1 ~g3;
  Netlist.resistor nl "RL" "out" "0" 1.0;
  Mna.build nl

let test_iip3_of_cubic () =
  let g1 = 1e-3 and g3 = 3e-3 in
  let a_iip3 =
    Measures.iip3 ~a_probe:0.05 ~build:(cubic_stage g1 g3) ~node:"out" ~f1:10e6
      ~f2:11e6 ()
  in
  let analytic = sqrt (4.0 /. 3.0 *. (g1 /. g3)) in
  check_float ~eps:(0.03 *. analytic) "IIP3 matches (4/3)|g1/g3|" analytic a_iip3

let test_noise_figure_attenuator () =
  (* textbook: a matched resistive attenuator's noise figure equals its
     attenuation. A divider with R_series = R_load: loss 6 dB, NF 6 dB
     relative to the source resistor contribution *)
  let nl = Netlist.create () in
  Netlist.vsource nl "VIN" "src" "0" (Wave.Dc 0.0);
  Netlist.resistor nl "RS" "src" "mid" 1e3;
  Netlist.resistor nl "RP" "mid" "0" 1e3;
  let c = Mna.build nl in
  let nf = Measures.noise_figure c ~source_resistor:"RS" ~node:"mid" ~freq:1e6 in
  (* total noise at mid: RS and RP in parallel (both 1k): each contributes
     half; NF = 10 log10(total / RS part) = 3 dB *)
  check_float ~eps:0.05 "NF of symmetric divider" 3.0 nf

(* ------------------------------------------------------------- failures *)

let test_mmft_rejects_close_tones () =
  (* the sample-snapping construction needs widely separated tones *)
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "a" "0" (Wave.Sum [ Wave.sine 0.1 1e6; Wave.sine 0.1 3e6 ]);
  Netlist.resistor nl "R1" "a" "0" 1e3;
  let c = Mna.build nl in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Mmft.solve c ~f1:1e6 ~f2:3e6);
       false
     with Mmft.No_convergence _ -> true)

let test_hbn_rejects_dims_mismatch () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "a" "0" (Wave.sine 0.1 1e6);
  Netlist.resistor nl "R1" "a" "0" 1e3;
  let c = Mna.build nl in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Hbn.solve
            ~options:{ Hbn.dims = [| 8; 8 |]; max_newton = 5; tol = 1e-9; gmres_tol = 1e-10 }
            c ~tones:[| 1e6 |]);
       false
     with Invalid_argument _ -> true)

let test_autonomous_needs_oscillation () =
  (* a damped RC circuit with no source: autonomous shooting must detect
     that nothing oscillates instead of returning a bogus orbit *)
  let nl = Netlist.create () in
  Netlist.resistor nl "R1" "a" "0" 1e3;
  Netlist.capacitor nl "C1" "a" "0" 1e-9;
  let c = Mna.build nl in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Shooting.solve_autonomous c ~freq_guess:1e6 ~kick:(fun x -> x.(0) <- 0.1));
       false
     with Shooting.No_convergence _ -> true)

(* ------------------------------------------------------------ properties *)

let qcheck_suite =
  let open QCheck in
  let coeffs =
    make
      Gen.(list_size (int_range 1 5) (float_range (-2.0) 2.0))
      ~print:Print.(list float)
  in
  [
    Test.make ~name:"grid: spectral derivative exact for band-limited signals"
      ~count:40 coeffs (fun cs ->
        let n = 32 in
        let period = 1e-6 in
        let w0 = 2.0 *. Float.pi /. period in
        let f t =
          List.fold_left
            (fun (acc, k) c -> (acc +. (c *. sin (float_of_int k *. w0 *. t)), k + 1))
            (0.0, 1) cs
          |> fst
        in
        let df t =
          List.fold_left
            (fun (acc, k) c ->
              ( acc +. (c *. float_of_int k *. w0 *. cos (float_of_int k *. w0 *. t)),
                k + 1 ))
            (0.0, 1) cs
          |> fst
        in
        let samples = Vec.init n (fun i -> f (period *. float_of_int i /. float_of_int n)) in
        let d = Grid.diff_samples ~period samples in
        let ok = ref true in
        let scale = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 1.0 d in
        for i = 0 to n - 1 do
          let t = period *. float_of_int i /. float_of_int n in
          if Float.abs (d.(i) -. df t) > 1e-8 *. scale then ok := false
        done;
        !ok);
    Test.make ~name:"hb: linear RC fundamental matches the analytic transfer"
      ~count:25
      (QCheck.make
         Gen.(pair (float_range 0.2 5.0) (float_range 0.2 5.0))
         ~print:Print.(pair float float))
      (fun (r_k, c_n) ->
        let r = r_k *. 1e3 and cap = c_n *. 1e-9 in
        let freq = 1.0 /. (2.0 *. Float.pi *. r *. cap) in
        let nl = Netlist.create () in
        Netlist.vsource nl "V1" "in" "0" (Wave.sine 1.0 freq);
        Netlist.resistor nl "R1" "in" "out" r;
        Netlist.capacitor nl "C1" "out" "0" cap;
        let c = Mna.build nl in
        let res = Hb.solve c ~freq in
        Float.abs (Hb.harmonic_amplitude res "out" 1 -. (1.0 /. sqrt 2.0)) < 1e-5);
    Test.make ~name:"mmft: delay matrix shifts band-limited sequences" ~count:40
      (QCheck.make
         Gen.(pair (int_range 1 4) (float_range 0.01 0.9))
         ~print:Print.(pair int float))
      (fun (k, delay) ->
        let period1 = 1.0 in
        let d = Mmft.delay_matrix ~k ~period1 ~delay in
        let m_count = (2 * k) + 1 in
        let f t = 1.0 +. (0.7 *. cos (2.0 *. Float.pi *. float_of_int k *. t)) in
        let samples =
          Vec.init m_count (fun m -> f (float_of_int m /. float_of_int m_count))
        in
        let shifted = Mat.matvec d samples in
        let ok = ref true in
        for m = 0 to m_count - 1 do
          let expect = f ((float_of_int m /. float_of_int m_count) +. delay) in
          if Float.abs (shifted.(m) -. expect) > 1e-8 then ok := false
        done;
        !ok);
    Test.make ~name:"mpde: b^(t,t) = b(t) for random two-tone sources" ~count:40
      (QCheck.make
         Gen.(pair (float_range 0.1 3.0) (float_range 0.1 3.0))
         ~print:Print.(pair float float))
      (fun (a1, a2) ->
        let f1 = 1e4 and f2 = 1e8 in
        let nl = Netlist.create () in
        Netlist.vsource nl "V1" "in" "0" (Wave.Sum [ Wave.sine a1 f1; Wave.sine a2 f2 ]);
        Netlist.resistor nl "R1" "in" "0" 1e3;
        let c = Mna.build nl in
        let ok = ref true in
        List.iter
          (fun t ->
            let b2 = Mpde.eval_b2 c ~f1 ~f2 t t in
            let b1 = Mna.eval_b c t in
            if Vec.norm_inf (Vec.sub b1 b2) > 1e-12 then ok := false)
          [ 0.0; 3.3e-5; 8.9e-5 ];
        !ok);
  ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ("rf.grid", [ tc "spectral diff" test_grid_diff_sine; tc "harmonics" test_grid_harmonic ]);
    ( "rf.hb",
      [
        tc "linear vs ac" test_hb_linear_matches_ac;
        tc "gmres vs direct" test_hb_gmres_matches_direct;
        tc "rectifier dc" test_hb_rectifier_dc;
        tc "residual at solution" test_hb_residual_of_solution;
      ] );
    ( "rf.shooting",
      [
        tc "matches hb" test_shooting_matches_hb;
        tc "monodromy stable" test_shooting_monodromy_stable;
        slow "van der pol autonomous" test_vdp_autonomous;
      ] );
    ( "rf.mpde",
      [
        tc "split wave" test_mpde_split_wave;
        tc "split rejects" test_mpde_split_rejects;
        tc "diagonal consistency" test_mpde_diagonal_consistency;
        tc "cost accounting" test_mpde_cost_accounting;
        tc "reconstruction error" test_mpde_reconstruction_error;
      ] );
    ( "rf.mfdtd",
      [
        tc "linear two-tone" test_mfdtd_linear_two_tone;
        slow "diagonal vs transient" test_mfdtd_diagonal_matches_transient;
      ] );
    ("rf.hs", [ slow "matches mfdtd" test_hs_matches_mfdtd ]);
    ( "rf.mmft",
      [
        tc "delay matrix" test_mmft_delay_matrix;
        slow "mixer vs transient" test_mmft_mixer_vs_transient;
      ] );
    ("rf.envelope", [ slow "am tracking" test_envelope_am_tracking ]);
    ( "rf.hb2",
      [
        tc "linear two-tone" test_hb2_linear_two_tone;
        tc "intermodulation" test_hb2_intermodulation;
        tc "spectrum listing" test_hb2_spectrum_listing;
      ] );
    ( "rf.hbn",
      [
        tc "matches hb2" test_hbn_matches_hb2;
        slow "three-tone im3" test_hbn_three_tone_im3;
        tc "memory scaling" test_hbn_memory_scales_with_tones;
      ] );
    ( "rf.spectrum",
      [ tc "dbc" test_spectrum_dbc; tc "transient sine" test_spectrum_transient_sine ] );
    ( "rf.measures",
      [
        slow "p1db of tanh" test_p1db_of_tanh_limiter;
        tc "iip3 of cubic" test_iip3_of_cubic;
        tc "noise figure" test_noise_figure_attenuator;
      ] );
    ( "rf.failures",
      [
        tc "mmft close tones" test_mmft_rejects_close_tones;
        tc "hbn dims mismatch" test_hbn_rejects_dims_mismatch;
        slow "autonomous needs oscillation" test_autonomous_needs_oscillation;
      ] );
    ("rf.properties", List.map QCheck_alcotest.to_alcotest qcheck_suite);
  ]
