(* Tests for the cross-engine cascade and the a-posteriori certifier:
   escalation after an exhausted retry ladder, deterministic traces,
   two-engine cross-certification, engineered Suspect verdicts, and the
   Enlarge_krylov recovery rung of the EM extractors.

   Every sabotage goes through the deterministic Faults plans, so each
   case asserts on exact winners/ranks rather than on "eventually
   worked". *)

open Rfkit_la
open Rfkit_circuit
open Rfkit_solve
open Rfkit_rf
open Rfkit_em

let with_plan plan f =
  Faults.arm plan;
  Fun.protect ~finally:Faults.disarm f

(* the diode rectifier from the deck examples: nonlinear enough that HB,
   shooting and tran-fft all do real work yet agree on the spectrum *)
let rectifier () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.sine 2.0 10e6);
  Netlist.resistor nl "RS" "in" "a" 50.0;
  Netlist.diode nl "D1" "a" "out" ~is:1e-14 ();
  Netlist.resistor nl "RL" "out" "0" 10e3;
  Netlist.capacitor nl "CL" "out" "0" 100e-12;
  Mna.build nl

let freq = 10e6

let sabotage_hb =
  { Faults.none with engine = Some "hb"; singular_attempts = 99 }

(* ------------------------------------------------- cascade escalation *)

let test_cascade_recovers_via_shooting () =
  let c = rectifier () in
  match with_plan sabotage_hb (fun () -> Pss.solve_outcome c ~freq) with
  | Cascade.Exhausted f -> Alcotest.fail (Cascade.failure_to_string f)
  | Cascade.Completed (sol, r) ->
      Alcotest.(check string) "winner engine" "shooting" r.Cascade.winner;
      Alcotest.(check string) "solution engine" "shooting" sol.Pss.engine;
      Alcotest.(check int) "winner rank" 3 r.Cascade.winner_rank;
      Alcotest.(check int) "stages tried" 3 r.Cascade.stages_tried;
      Alcotest.(check (list string))
        "both HB formulations traced" [ "hb"; "hb-gmres" ]
        (List.map (fun e -> e.Cascade.from_engine) r.Cascade.escalations);
      List.iter
        (fun (e : Cascade.escalation) ->
          Alcotest.(check bool)
            (e.Cascade.from_engine ^ " exhausted its full ladder")
            true
            (List.length e.Cascade.failure.Supervisor.f_attempts >= 4))
        r.Cascade.escalations;
      (* the rescued result must still certify *)
      let cert = Pss.certify sol in
      Alcotest.(check bool)
        (Certify.certificate_to_string cert)
        true (Certify.is_certified cert)

let test_cascade_exhaustion_keeps_trace () =
  let c = rectifier () in
  (* sabotage a chain made only of HB formulations: nothing can win *)
  let chain =
    [
      Pss.Hb_stage Hb.default_options;
      Pss.Hb_stage { Hb.default_options with Hb.solver = Hb.Matrix_free_gmres };
    ]
  in
  match with_plan sabotage_hb (fun () -> Pss.solve_outcome ~chain c ~freq) with
  | Cascade.Completed _ -> Alcotest.fail "a fully sabotaged chain cannot win"
  | Cascade.Exhausted f ->
      Alcotest.(check int) "both stages in the trace" 2
        (List.length f.Cascade.x_escalations);
      (match f.Cascade.x_cause with
      | Supervisor.Singular_jacobian -> ()
      | cause ->
          Alcotest.failf "expected the injected cause, got %s"
            (Supervisor.cause_to_string cause));
      let s = Cascade.failure_to_string f in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "rendering mentions %S" needle)
            true
            (let n = String.length needle and m = String.length s in
             let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
             go 0))
        [ "hb"; "hb-gmres"; "singular Jacobian"; "attempt 4" ]

(* an armed fault plan for one engine must not bleed into the budgets of
   the engines after it (the per-engine attempt scoping fix) *)
let test_fault_scope_per_engine () =
  let c = rectifier () in
  let outcome =
    with_plan
      { Faults.none with engine = Some "shooting"; singular_attempts = 1 }
      (fun () -> Pss.solve_outcome c ~freq)
  in
  match outcome with
  | Cascade.Exhausted f -> Alcotest.fail (Cascade.failure_to_string f)
  | Cascade.Completed (_, r) ->
      Alcotest.(check string) "hb wins untouched" "hb" r.Cascade.winner;
      Alcotest.(check int) "no escalations" 0 (List.length r.Cascade.escalations)

(* ------------------------------------------- two-engine certification *)

let solve_hb c =
  match Hb.solve_outcome c ~freq with
  | Supervisor.Converged (r, _) -> Pss.of_hb r
  | Supervisor.Failed f -> Alcotest.fail (Supervisor.failure_to_string f)

let solve_shooting c =
  match Shooting.solve_outcome c ~freq with
  | Supervisor.Converged (r, _) -> Pss.of_shooting r
  | Supervisor.Failed f -> Alcotest.fail (Supervisor.failure_to_string f)

let test_hb_shooting_cross_certify () =
  let c = rectifier () in
  let hb = solve_hb c and sh = solve_shooting c in
  Alcotest.(check bool)
    (Printf.sprintf "spectra agree: cross = %.3e" (Pss.cross_error hb sh))
    true
    (Pss.cross_error hb sh < 1e-2);
  List.iter
    (fun cert ->
      Alcotest.(check bool)
        (Certify.certificate_to_string cert)
        true (Certify.is_certified cert))
    [ Pss.certify ~cross:sh hb; Pss.certify ~cross:hb sh ]

let test_engineered_suspect () =
  let c = rectifier () in
  let cert = Pss.certify ~tol_scale:1e-12 (solve_hb c) in
  (match cert.Certify.verdict with
  | Certify.Certified -> Alcotest.fail "thresholds scaled to zero must fail"
  | Certify.Suspect failing ->
      Alcotest.(check bool)
        "at least one named failing check" true
        (List.length failing >= 1);
      List.iter
        (fun (ch : Certify.check) ->
          Alcotest.(check bool)
            (ch.Certify.name ^ " exceeds its scaled threshold")
            true
            (ch.Certify.measured > ch.Certify.threshold))
        failing);
  let s = Certify.verdict_to_string cert.Certify.verdict in
  Alcotest.(check bool)
    ("verdict names the defect: " ^ s)
    true
    (String.length s >= 7 && String.sub s 0 7 = "Suspect")

(* the finite check can never be waved through by a loose tol_scale *)
let test_nan_never_certifies () =
  let c = rectifier () in
  let sol = solve_hb c in
  sol.Pss.samples.Mat.a.(0) <- Float.nan;
  let cert = Pss.certify ~tol_scale:1e12 sol in
  Alcotest.(check bool) "NaN sample -> Suspect" false (Certify.is_certified cert)

(* --------------------------------------------------- multi-rate chain *)

let mixer () =
  let nl = Netlist.create () in
  Netlist.vsource nl "VRF" "rf" "0" (Wave.sine 0.1 0.1e6);
  Netlist.vsource nl "VLO" "lo" "0" (Wave.square 1.0 10e6);
  Netlist.mult_vccs nl "MIX" "mix" "0" ~a:("rf", "0") ~b:("lo", "0") ~k:2e-3;
  Netlist.resistor nl "RM" "mix" "0" 500.0;
  Netlist.capacitor nl "CM" "mix" "0" 10e-12;
  Mna.build nl

let test_qpss_cascade_recovers () =
  let c = mixer () in
  let outcome =
    with_plan { Faults.none with engine = Some "mmft"; singular_attempts = 99 }
      (fun () -> Qpss.solve_outcome c ~f1:0.1e6 ~f2:10e6)
  in
  match outcome with
  | Cascade.Exhausted f -> Alcotest.fail (Cascade.failure_to_string f)
  | Cascade.Completed (sol, r) ->
      Alcotest.(check string) "winner" "mfdtd" r.Cascade.winner;
      Alcotest.(check int) "rank" 2 r.Cascade.winner_rank;
      let cert = Qpss.certify ~nodes:[ "mix" ] sol in
      Alcotest.(check bool)
        (Certify.certificate_to_string cert)
        true (Certify.is_certified cert);
      (* the rescued spectrum still shows the mix products *)
      Alcotest.(check bool)
        "sum/difference products present" true
        (sol.Qpss.mix "mix" ~k1:1 ~k2:1 > 1e-3
        && sol.Qpss.mix "mix" ~k1:1 ~k2:(-1) > 1e-3)

let test_qpss_cross_engines () =
  let c = mixer () in
  let solve chain =
    match Qpss.solve_outcome ~chain c ~f1:0.1e6 ~f2:10e6 with
    | Cascade.Completed (sol, _) -> sol
    | Cascade.Exhausted f -> Alcotest.fail (Cascade.failure_to_string f)
  in
  let mm = solve [ Qpss.Mmft_stage Mmft.default_options ] in
  let fd = solve [ Qpss.Mfdtd_stage Mfdtd.default_options ] in
  let cert = Qpss.certify ~nodes:[ "mix" ] ~cross:fd mm in
  Alcotest.(check bool)
    (Certify.certificate_to_string cert)
    true (Certify.is_certified cert);
  Alcotest.(check bool)
    (Printf.sprintf "mmft/mfdtd cross = %.3e" (Qpss.cross_error ~nodes:[ "mix" ] mm fd))
    true
    (Qpss.cross_error ~nodes:[ "mix" ] mm fd < 0.05)

(* ------------------------------------------------ EM Enlarge_krylov *)

let test_em_fd_enlarge_krylov () =
  let outcome =
    with_plan
      { Faults.none with engine = Some "em-fd"; krylov_stall_attempts = 1 }
      (fun () ->
        Fd.parallel_plate_outcome ~n:10 ~plate_cells:4 ~gap_cells:2 ~cell:10e-6 ())
  in
  match outcome with
  | Supervisor.Failed f -> Alcotest.fail (Supervisor.failure_to_string f)
  | Supervisor.Converged (r, rep) ->
      Alcotest.(check string)
        "recovered on the enlarged-basis rung" "krylov-basis(x4)"
        (Supervisor.strategy_name rep.Supervisor.strategy);
      Alcotest.(check int) "two attempts" 2 (List.length rep.Supervisor.attempts);
      Alcotest.(check bool)
        (Printf.sprintf "capacitance plausible: %.3e F" r.Fd.capacitance)
        true
        (r.Fd.capacitance > 1e-16 && r.Fd.capacitance < 1e-12)

let square_plate ?(z = 0.0) ?(n = 6) side name =
  Geo3.mesh_plate ~name
    ~origin:(Geo3.v3 (-.side /. 2.0) (-.side /. 2.0) z)
    ~u:(Geo3.v3 side 0.0 0.0) ~v:(Geo3.v3 0.0 side 0.0) ~nu:n ~nv:n

let test_em_mom_enlarge_krylov () =
  let side = 1e-3 in
  let p =
    Mom.make Kernel.free_space
      [| square_plate ~z:50e-6 side "top"; square_plate ~z:0.0 side "bottom" |]
  in
  let mat = Mom.dense_matrix p in
  let diag = Vec.init (Mom.n_panels p) (fun i -> Mat.get mat i i) in
  let outcome =
    with_plan
      { Faults.none with engine = Some "em-mom"; krylov_stall_attempts = 1 }
      (fun () ->
        Mom.solve_operator_outcome p ~matvec:(Mat.matvec mat) ~precond_diag:diag ())
  in
  match outcome with
  | Supervisor.Failed f -> Alcotest.fail (Supervisor.failure_to_string f)
  | Supervisor.Converged (cap, rep) ->
      Alcotest.(check string)
        "recovered with the doubled restart basis" "krylov-basis(x2)"
        (Supervisor.strategy_name rep.Supervisor.strategy);
      let dense = Mom.solve_dense p in
      Alcotest.(check bool)
        "matches the dense reference" true
        (Float.abs (Mat.get cap 0 1 -. Mat.get dense.Mom.cap_matrix 0 1)
        < 1e-3 *. Float.abs (Mat.get dense.Mom.cap_matrix 0 1))

(* exception shims still raise the shared typed exception *)
let test_em_shim_raises_typed () =
  with_plan
    { Faults.none with engine = Some "em-fd"; krylov_stall_attempts = 99 }
    (fun () ->
      match
        Fd.parallel_plate ~n:10 ~plate_cells:4 ~gap_cells:2 ~cell:10e-6
      with
      | _ -> Alcotest.fail "a fully sabotaged solve cannot succeed"
      | exception Error.No_convergence e ->
          Alcotest.(check string) "engine tag" "em-fd" e.Error.engine;
          (match e.Error.cause with
          | Supervisor.Krylov_stall _ -> ()
          | c ->
              Alcotest.failf "expected Krylov stall, got %s"
                (Supervisor.cause_to_string c)))

(* ------------------------------------------------------- determinism *)

let qcheck_cascade_deterministic =
  QCheck.Test.make ~name:"cascade trace is a pure function of the fault plan"
    ~count:6
    QCheck.(int_range 0 5)
    (fun k ->
      let run () =
        let c = rectifier () in
        let outcome =
          with_plan { Faults.none with engine = Some "hb"; singular_attempts = k }
            (fun () ->
              Pss.solve_outcome
                ~chain:
                  [
                    Pss.Hb_stage Hb.default_options;
                    Pss.Shooting_stage Shooting.default_options;
                  ]
                c ~freq)
        in
        match outcome with
        | Cascade.Completed (sol, r) ->
            Cascade.report_to_string r
            ^ Certify.certificate_to_string (Pss.certify sol)
        | Cascade.Exhausted f -> Cascade.failure_to_string f
      in
      String.equal (run ()) (run ()))

let suite =
  [
    ( "cascade",
      [
        Alcotest.test_case "sabotaged HB escalates to shooting and certifies"
          `Slow test_cascade_recovers_via_shooting;
        Alcotest.test_case "exhausted chain keeps the full trace" `Quick
          test_cascade_exhaustion_keeps_trace;
        Alcotest.test_case "fault plans are scoped per engine" `Slow
          test_fault_scope_per_engine;
        Alcotest.test_case "qpss: sabotaged MMFT escalates to MFDTD" `Slow
          test_qpss_cascade_recovers;
      ] );
    ( "certify",
      [
        Alcotest.test_case "HB and shooting certify each other" `Slow
          test_hb_shooting_cross_certify;
        Alcotest.test_case "tiny tol-scale manufactures a Suspect" `Slow
          test_engineered_suspect;
        Alcotest.test_case "NaN sample never certifies" `Slow
          test_nan_never_certifies;
        Alcotest.test_case "qpss: MMFT and MFDTD cross-certify" `Slow
          test_qpss_cross_engines;
      ] );
    ( "cascade.em",
      [
        Alcotest.test_case "FD recovers via enlarged CG allowance" `Quick
          test_em_fd_enlarge_krylov;
        Alcotest.test_case "MoM recovers via enlarged GMRES basis" `Quick
          test_em_mom_enlarge_krylov;
        Alcotest.test_case "exhausted EM ladder raises the typed exception"
          `Quick test_em_shim_raises_typed;
      ] );
    ( "cascade.properties",
      List.map QCheck_alcotest.to_alcotest [ qcheck_cascade_deterministic ] );
  ]
