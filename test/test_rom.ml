(* Tests for rfkit_rom: PVL vs Arnoldi moment matching (2q vs q), AWE
   instability, passivity post-processing, dual-domain realization, and
   ROM-accelerated noise. *)

open Rfkit_la
open Rfkit_rom

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let line = lazy (Descriptor.rc_line ~sections:40 ~r_total:4e3 ~c_total:4e-12)
let rlc = lazy (Descriptor.rlc_line ~sections:20 ~r_total:100.0 ~l_total:10e-9 ~c_total:4e-12)

(* ------------------------------------------------------------ Descriptor *)

let test_descriptor_dc_gain () =
  (* RC line at DC passes the input straight through *)
  let d = Lazy.force line in
  let h0 = Descriptor.transfer d Cx.zero in
  check_float ~eps:1e-9 "dc gain" 1.0 h0.Cx.re

let test_descriptor_lowpass () =
  let d = Lazy.force line in
  (* Elmore-style estimate of the line's time constant: R C / 2 *)
  let tau = 4e3 *. 4e-12 /. 2.0 in
  let f3 = 1.0 /. (2.0 *. Float.pi *. tau) in
  let h_lo = Descriptor.transfer d (Cx.im (2.0 *. Float.pi *. f3 /. 100.0)) in
  let h_hi = Descriptor.transfer d (Cx.im (2.0 *. Float.pi *. f3 *. 100.0)) in
  Alcotest.(check bool) "passband" true (Cx.abs h_lo > 0.99);
  Alcotest.(check bool) "rolloff" true (Cx.abs h_hi < 0.05)

let test_descriptor_moments_sanity () =
  let d = Lazy.force line in
  let m = Descriptor.moments d ~s0:0.0 ~k:4 in
  check_float ~eps:1e-9 "m0 = dc gain" 1.0 m.(0);
  (* first moment = -Elmore delay of the line: -sum over stages *)
  Alcotest.(check bool) "m1 negative (delay)" true (m.(1) < 0.0)

(* ------------------------------------------------------------------ PVL *)

let test_pvl_matches_2q_moments () =
  let d = Lazy.force line in
  let q = 5 in
  let rom = Pvl.reduce d ~s0:0.0 ~q in
  let exact = Descriptor.moments d ~s0:0.0 ~k:(2 * q) in
  let reduced = Pvl.moments rom (2 * q) in
  for k = 0 to (2 * q) - 1 do
    (* moments decay like (RC)^k, so only the relative error means anything *)
    let rel = Float.abs (exact.(k) -. reduced.(k)) /. Float.abs exact.(k) in
    Alcotest.(check bool)
      (Printf.sprintf "moment %d: %g vs %g (rel %.2e)" k exact.(k) reduced.(k) rel)
      true (rel < 1e-6)
  done

let test_pvl_transfer_accuracy () =
  let d = Lazy.force line in
  let rom = Pvl.reduce d ~s0:0.0 ~q:8 in
  (* across three decades around the corner *)
  let tau = 4e3 *. 4e-12 /. 2.0 in
  let f3 = 1.0 /. (2.0 *. Float.pi *. tau) in
  List.iter
    (fun mult ->
      let s = Cx.im (2.0 *. Float.pi *. f3 *. mult) in
      let h_exact = Descriptor.transfer d s in
      let h_rom = Pvl.transfer rom s in
      let err = Cx.abs (Cx.( -: ) h_exact h_rom) in
      Alcotest.(check bool)
        (Printf.sprintf "f = %.2g f3: err %.2e" mult err)
        true
        (err < 1e-3 *. Float.max 1e-3 (Cx.abs h_exact)))
    [ 0.01; 0.1; 1.0; 3.0; 10.0 ]

let test_pvl_beats_arnoldi_same_order () =
  (* same q, evaluate both ROMs well beyond the corner where the extra
     matched moments matter *)
  let d = Lazy.force rlc in
  let q = 6 in
  let pvl = Pvl.reduce d ~s0:0.0 ~q in
  let arn = Arnoldi_rom.reduce d ~s0:0.0 ~q in
  let err rom_transfer =
    let acc = ref 0.0 in
    List.iter
      (fun f ->
        let s = Cx.im (2.0 *. Float.pi *. f) in
        let h = Descriptor.transfer d s in
        acc := !acc +. Cx.abs (Cx.( -: ) h (rom_transfer s)))
      [ 1e8; 3e8; 1e9; 2e9; 4e9 ];
    !acc
  in
  let e_pvl = err (Pvl.transfer pvl) in
  let e_arn = err (Arnoldi_rom.transfer arn) in
  Alcotest.(check bool)
    (Printf.sprintf "pvl %.3e vs arnoldi %.3e" e_pvl e_arn)
    true (e_pvl < e_arn)

let test_pvl_poles_stable_for_rc () =
  let d = Lazy.force line in
  let rom = Pvl.reduce d ~s0:0.0 ~q:6 in
  let poles = Pvl.poles rom in
  Array.iter
    (fun (p : Cx.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "pole %.3e%+.3ei in LHP" p.Cx.re p.Cx.im)
        true (p.Cx.re < 0.0))
    poles

(* -------------------------------------------------------------- Arnoldi *)

let test_arnoldi_matches_q_moments () =
  let d = Lazy.force line in
  let q = 5 in
  let rom = Arnoldi_rom.reduce d ~s0:0.0 ~q in
  let exact = Descriptor.moments d ~s0:0.0 ~k:q in
  let reduced = Arnoldi_rom.moments rom q in
  for k = 0 to q - 1 do
    let rel = Float.abs (exact.(k) -. reduced.(k)) /. Float.abs exact.(k) in
    Alcotest.(check bool) (Printf.sprintf "moment %d (rel %.2e)" k rel) true (rel < 1e-6)
  done

let test_arnoldi_misses_later_moments () =
  (* some moment in q..2q-1 is NOT matched by Arnoldi at order q (PVL
     matches them all) -- the paper's 2q-vs-q comparison *)
  let d = Lazy.force rlc in
  let q = 4 in
  let rom = Arnoldi_rom.reduce d ~s0:0.0 ~q in
  let exact = Descriptor.moments d ~s0:0.0 ~k:(2 * q) in
  let reduced = Arnoldi_rom.moments rom (2 * q) in
  let worst = ref 0.0 in
  for k = q to (2 * q) - 1 do
    let rel = Float.abs (exact.(k) -. reduced.(k)) /. Float.abs exact.(k) in
    if rel > !worst then worst := rel
  done;
  Alcotest.(check bool) (Printf.sprintf "worst late-moment error %.2e" !worst) true
    (!worst > 1e-6);
  (* while PVL at the same order matches those same moments *)
  let pvl = Pvl.reduce d ~s0:0.0 ~q in
  let pvl_m = Pvl.moments pvl (2 * q) in
  for k = 0 to (2 * q) - 1 do
    let rel = Float.abs (exact.(k) -. pvl_m.(k)) /. Float.abs exact.(k) in
    Alcotest.(check bool) (Printf.sprintf "pvl moment %d (%.1e)" k rel) true (rel < 1e-5)
  done

(* ------------------------------------------------------------------ AWE *)

let test_awe_hankel_collapses () =
  let d = Lazy.force line in
  let r2 = Awe.hankel_rcond d ~s0:0.0 ~q:2 in
  let r8 = Awe.hankel_rcond d ~s0:0.0 ~q:8 in
  Alcotest.(check bool)
    (Printf.sprintf "rcond %.2e -> %.2e" r2 r8)
    true
    (r8 < 1e-10 && r8 < r2 /. 1e6)

let test_awe_poles_vs_pvl () =
  (* at low order both agree on the dominant pole; AWE's estimate of the
     same pole degrades at higher order while PVL stays put *)
  let d = Lazy.force line in
  let dominant poles =
    Array.fold_left
      (fun acc (p : Cx.t) ->
        if p.Cx.re < 0.0 && Float.abs p.Cx.re < Float.abs acc then p.Cx.re else acc)
      neg_infinity poles
  in
  let awe2 = dominant (Awe.poles d ~s0:0.0 ~q:2) in
  let pvl2 = dominant (Pvl.poles (Pvl.reduce d ~s0:0.0 ~q:2)) in
  check_float ~eps:(0.05 *. Float.abs pvl2) "low order agreement" pvl2 awe2

(* ---------------------------------------------------------------- PRIMA *)

let line_i = lazy (Descriptor.rc_line_i ~sections:40 ~r_total:4e3 ~c_total:4e-12)

let rlc_i =
  lazy (Descriptor.rlc_line_i ~sections:20 ~r_total:100.0 ~l_total:10e-9 ~c_total:4e-12)

let test_prima_matches_q_moments () =
  let d = Lazy.force line_i in
  let q = 5 in
  let rom = Prima.reduce d ~s0:0.0 ~q in
  let exact = Descriptor.moments d ~s0:0.0 ~k:q in
  let reduced = Prima.moments rom ~s0:0.0 q in
  for k = 0 to q - 1 do
    let rel = Float.abs (exact.(k) -. reduced.(k)) /. Float.abs exact.(k) in
    Alcotest.(check bool) (Printf.sprintf "moment %d (rel %.2e)" k rel) true (rel < 1e-6)
  done

let test_prima_transfer_tracks_exact () =
  let d = Lazy.force rlc_i in
  let rom = Prima.reduce d ~s0:0.0 ~q:8 in
  List.iter
    (fun f ->
      let s = Cx.im (2.0 *. Float.pi *. f) in
      let h = Descriptor.transfer d s in
      let hr = Prima.transfer rom s in
      let err = Cx.abs (Cx.( -: ) h hr) in
      Alcotest.(check bool)
        (Printf.sprintf "f=%g err %.2e" f err)
        true
        (err < 0.02 *. Float.max 0.01 (Cx.abs h)))
    [ 1e7; 1e8; 5e8; 1e9 ]

let test_prima_poles_stable () =
  (* congruence preserves passivity: RLC-line PRIMA poles stay in the LHP
     at orders where aggressive reduction could misbehave *)
  List.iter
    (fun q ->
      let d = Lazy.force rlc_i in
      let rom = Prima.reduce d ~s0:0.0 ~q in
      Array.iter
        (fun (p : Cx.t) ->
          Alcotest.(check bool)
            (Printf.sprintf "q=%d pole %.3e%+.3ei" q p.Cx.re p.Cx.im)
            true
            (p.Cx.re < 1e-3 *. Cx.abs p))
        (Prima.poles rom))
    [ 4; 8; 12 ]

(* ------------------------------------------------------------ Passivity *)

let test_pole_residue_transfer () =
  let d = Lazy.force line in
  let rom = Pvl.reduce d ~s0:0.0 ~q:6 in
  let pr = Passivity.of_pvl rom in
  List.iter
    (fun f ->
      let s = Cx.im (2.0 *. Float.pi *. f) in
      let h_rom = Pvl.transfer rom s in
      let h_pr = Passivity.transfer pr s in
      let err = Cx.abs (Cx.( -: ) h_rom h_pr) in
      Alcotest.(check bool)
        (Printf.sprintf "pole-residue matches rom at %g (err %.2e)" f err)
        true
        (err < 1e-5 *. Float.max 1e-6 (Cx.abs h_rom)))
    [ 1e6; 1e7; 1e8 ]

let test_enforce_stability () =
  (* inject a synthetic RHP pole and check the flip *)
  let pr =
    {
      Passivity.poles = [| Cx.make (-1e8) 0.0; Cx.make 5e7 1e9 |];
      residues = [| Cx.re 1.0; Cx.re 0.5 |];
    }
  in
  Alcotest.(check bool) "detects instability" false (Passivity.is_stable pr);
  Alcotest.(check int) "one bad pole" 1 (List.length (Passivity.unstable_poles pr));
  let fixed = Passivity.enforce_stability pr in
  Alcotest.(check bool) "fixed" true (Passivity.is_stable fixed);
  check_float "imaginary part kept" 1e9 fixed.Passivity.poles.(1).Cx.im;
  check_float "real part reflected" (-5e7) fixed.Passivity.poles.(1).Cx.re

(* -------------------------------------------------------------- Realize *)

let test_realize_step_matches_dc () =
  let d = Lazy.force line in
  let rom = Pvl.reduce d ~s0:0.0 ~q:6 in
  let final = Realize.step_response_final rom in
  check_float ~eps:1e-3 "step settles to H(0)" (Realize.dc_gain rom) final

let test_realize_sine_matches_frequency_domain () =
  (* drive the realization with a sine in-band; steady-state amplitude must
     equal |H(j w)| -- the dual-domain consistency Section 5 demands *)
  let d = Lazy.force line in
  let rom = Pvl.reduce d ~s0:0.0 ~q:8 in
  let f = 2e7 in
  let w = 2.0 *. Float.pi *. f in
  let expected = Cx.abs (Pvl.transfer rom (Cx.im w)) in
  let sim =
    Realize.simulate rom
      ~u:(fun t -> sin (w *. t))
      ~t_stop:(20.0 /. f) ~dt:(1.0 /. f /. 400.0)
  in
  (* amplitude over the last two periods *)
  let n = Array.length sim.Realize.output in
  let tail = Array.sub sim.Realize.output (n - (2 * 400)) (2 * 400) in
  let amp = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 tail in
  check_float ~eps:(0.02 *. expected) "steady-state amplitude" expected amp

(* ------------------------------------------------------------ ROM noise *)

let noisy_filter () =
  let open Rfkit_circuit in
  let nl = Netlist.create () in
  Netlist.vsource nl "VIN" "in" "0" (Wave.Dc 0.0);
  Netlist.resistor nl "R1" "in" "a" 1e3;
  Netlist.capacitor nl "C1" "a" "0" 1e-12;
  Netlist.resistor nl "R2" "a" "out" 5e3;
  Netlist.capacitor nl "C2" "out" "0" 0.5e-12;
  Netlist.resistor nl "R3" "out" "0" 20e3;
  Mna.build nl

let test_rom_noise_matches_direct () =
  let c = noisy_filter () in
  let freqs = [| 1e6; 1e7; 1e8; 1e9 |] in
  let d = Rom_noise.direct c ~node:"out" ~freqs in
  let r = Rom_noise.via_rom ~q:6 c ~node:"out" ~freqs in
  Array.iteri
    (fun i psd_direct ->
      (* serious Lanczos breakdown (no look-ahead) costs a few percent on
         far-out-of-band sources; the shape claim survives *)
      check_float
        ~eps:(0.05 *. psd_direct)
        (Printf.sprintf "psd at %g" freqs.(i))
        psd_direct r.(i))
    d

let test_rom_noise_cheaper () =
  (* the win needs a genuinely large linear block: a long RC ladder *)
  let open Rfkit_circuit in
  let nl = Netlist.create () in
  Netlist.vsource nl "VIN" "n0" "0" (Wave.Dc 0.0);
  for k = 1 to 60 do
    Netlist.resistor nl (Printf.sprintf "R%d" k)
      (Printf.sprintf "n%d" (k - 1)) (Printf.sprintf "n%d" k) 100.0;
    Netlist.capacitor nl (Printf.sprintf "C%d" k) (Printf.sprintf "n%d" k) "0" 1e-13
  done;
  let c = Mna.build nl in
  let direct_ops, rom_ops = Rom_noise.solve_counts c ~n_freqs:1000 ~q:6 in
  Alcotest.(check bool)
    (Printf.sprintf "%d vs %d ops" direct_ops rom_ops)
    true (rom_ops < direct_ops)

(* ------------------------------------------------------------ properties *)

let qcheck_suite =
  let open QCheck in
  let line_params =
    make
      Gen.(triple (int_range 5 25) (float_range 0.5 10.0) (float_range 0.5 10.0))
      ~print:Print.(triple int float float)
  in
  [
    Test.make ~name:"pvl: 2q moments match on random RC lines" ~count:25 line_params
      (fun (sections, r_k, c_p) ->
        let d =
          Descriptor.rc_line ~sections ~r_total:(r_k *. 1e3) ~c_total:(c_p *. 1e-12)
        in
        let q = 4 in
        let rom = Pvl.reduce d ~s0:0.0 ~q in
        let exact = Descriptor.moments d ~s0:0.0 ~k:(2 * q) in
        let red = Pvl.moments rom (2 * q) in
        let ok = ref true in
        Array.iteri
          (fun k m ->
            if Float.abs (m -. red.(k)) > 1e-5 *. Float.abs m then ok := false)
          exact;
        !ok);
    Test.make ~name:"descriptor: voltage-driven RC line has unit DC gain" ~count:25
      line_params (fun (sections, r_k, c_p) ->
        let d =
          Descriptor.rc_line ~sections ~r_total:(r_k *. 1e3) ~c_total:(c_p *. 1e-12)
        in
        Cx.abs (Cx.( -: ) (Descriptor.transfer d Cx.zero) Cx.one) < 1e-8);
    Test.make ~name:"pvl: rom transfer agrees with exact in the passband" ~count:25
      line_params (fun (sections, r_k, c_p) ->
        let r = r_k *. 1e3 and cc = c_p *. 1e-12 in
        let d = Descriptor.rc_line ~sections ~r_total:r ~c_total:cc in
        let rom = Pvl.reduce d ~s0:0.0 ~q:6 in
        let f3 = 2.0 /. (2.0 *. Float.pi *. r *. cc) in
        let s = Cx.im (2.0 *. Float.pi *. f3 /. 10.0) in
        Cx.abs (Cx.( -: ) (Descriptor.transfer d s) (Pvl.transfer rom s)) < 1e-4);
  ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "rom.descriptor",
      [
        tc "dc gain" test_descriptor_dc_gain;
        tc "lowpass" test_descriptor_lowpass;
        tc "moments" test_descriptor_moments_sanity;
      ] );
    ( "rom.pvl",
      [
        tc "matches 2q moments" test_pvl_matches_2q_moments;
        tc "transfer accuracy" test_pvl_transfer_accuracy;
        tc "beats arnoldi" test_pvl_beats_arnoldi_same_order;
        tc "stable rc poles" test_pvl_poles_stable_for_rc;
      ] );
    ( "rom.arnoldi",
      [
        tc "matches q moments" test_arnoldi_matches_q_moments;
        tc "misses 2q moments" test_arnoldi_misses_later_moments;
      ] );
    ( "rom.awe",
      [ tc "hankel collapses" test_awe_hankel_collapses; tc "poles vs pvl" test_awe_poles_vs_pvl ] );
    ( "rom.prima",
      [
        tc "matches q moments" test_prima_matches_q_moments;
        tc "transfer accuracy" test_prima_transfer_tracks_exact;
        tc "poles stable" test_prima_poles_stable;
      ] );
    ( "rom.passivity",
      [ tc "pole-residue transfer" test_pole_residue_transfer; tc "enforce" test_enforce_stability ] );
    ( "rom.realize",
      [
        tc "step matches dc" test_realize_step_matches_dc;
        tc "sine matches H(jw)" test_realize_sine_matches_frequency_domain;
      ] );
    ( "rom.noise",
      [ tc "matches direct" test_rom_noise_matches_direct; tc "cheaper" test_rom_noise_cheaper ] );
    ("rom.properties", List.map QCheck_alcotest.to_alcotest qcheck_suite);
  ]
