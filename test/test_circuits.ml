(* Regression tests pinning the paper-benchmark circuits to the numbers
   the reproduction reports (see EXPERIMENTS.md). *)

open Rfkit_la
open Rfkit_rf
open Rfkit_circuits

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* -------------------------------------------------------- Fig 4 mixer *)

let test_mixer_fig4_numbers () =
  let p = Mixer.paper_params in
  let c = Mixer.build p in
  let res =
    Mmft.solve
      ~options:{ Mmft.default_options with slow_harmonics = 3; steps2 = 50 }
      c ~f1:p.Mixer.f_rf ~f2:p.Mixer.f_lo
  in
  let a1 = Mmft.mix_amplitude res Mixer.output_node ~slow:1 ~fast:1 in
  let a3 = Mmft.mix_amplitude res Mixer.output_node ~slow:3 ~fast:1 in
  check_float ~eps:2e-3 "main mix ~60 mV" 60e-3 a1;
  check_float ~eps:0.2e-3 "third mix ~1.1 mV" 1.0e-3 a3;
  let ratio_db = 20.0 *. log10 (a1 /. a3) in
  Alcotest.(check bool)
    (Printf.sprintf "35 dB distortion (got %.1f)" ratio_db)
    true
    (Float.abs (ratio_db -. 35.0) < 2.0)

let test_mixer_scales () =
  (* a scaled mixer keeps the same relative distortion: the ratio is set by
     the limiter, not by the tone placement *)
  let p = Mixer.scaled_params ~f_rf:10e3 ~f_lo:50e6 in
  let c = Mixer.build p in
  let res = Mmft.solve c ~f1:p.Mixer.f_rf ~f2:p.Mixer.f_lo in
  let a1 = Mmft.mix_amplitude res Mixer.output_node ~slow:1 ~fast:1 in
  let a3 = Mmft.mix_amplitude res Mixer.output_node ~slow:3 ~fast:1 in
  Alcotest.(check bool) "ratio preserved" true
    (Float.abs ((20.0 *. log10 (a1 /. a3)) -. 35.0) < 3.0)

(* ---------------------------------------------------- Fig 1 modulator *)

let test_modulator_fig1_numbers () =
  let p = Modulator.paper_params in
  let c = Modulator.build p in
  let res =
    Hb2.solve ~options:{ Hb2.default_options with n1 = 8; n2 = 8 } c
      ~f1:p.Modulator.f_bb ~f2:p.Modulator.f_lo
  in
  let carrier = Hb2.mix_amplitude res Modulator.output_node ~k1:(-1) ~k2:1 in
  let image = Hb2.mix_amplitude res Modulator.output_node ~k1:1 ~k2:1 in
  let leak = Hb2.mix_amplitude res Modulator.output_node ~k1:0 ~k2:1 in
  check_float ~eps:1.0 "image -35 dBc" (-35.0) (Spectrum.dbc ~carrier image);
  check_float ~eps:1.0 "LO leak -78 dBc" (-78.0) (Spectrum.dbc ~carrier leak);
  (* parameter->spur estimates agree with the solved circuit *)
  check_float ~eps:1.0 "image estimate" (Modulator.expected_image_dbc p)
    (Spectrum.dbc ~carrier image)

let test_modulator_ideal_rejects_image () =
  (* zero imbalance: the image vanishes below -100 dBc *)
  let p = { Modulator.paper_params with Modulator.gain_imbalance = 0.0 } in
  let c = Modulator.build p in
  let res =
    Hb2.solve ~options:{ Hb2.default_options with n1 = 8; n2 = 8 } c
      ~f1:p.Modulator.f_bb ~f2:p.Modulator.f_lo
  in
  let carrier = Hb2.mix_amplitude res Modulator.output_node ~k1:(-1) ~k2:1 in
  let image = Hb2.mix_amplitude res Modulator.output_node ~k1:1 ~k2:1 in
  Alcotest.(check bool) "image suppressed" true
    (Spectrum.dbc ~carrier image < -100.0)

(* -------------------------------------------------------- converter *)

let test_converter_engines_agree () =
  let p = Converter.default_params in
  let c = Converter.build p in
  let mf =
    Mfdtd.solve
      ~options:{ Mfdtd.default_options with n1 = 12; n2 = 32 }
      c ~f1:p.Converter.f_mod ~f2:p.Converter.f_pwm
  in
  let hs =
    Hs.solve
      ~options:{ Hs.default_options with n1 = 12; steps2 = 32 }
      c ~f1:p.Converter.f_mod ~f2:p.Converter.f_pwm
  in
  let gm = Mfdtd.node_grid mf Converter.output_node in
  let gh = Hs.node_grid hs Converter.output_node in
  Alcotest.(check bool) "MFDTD = HS" true (Mat.max_abs (Mat.sub gm gh) < 1e-4)

let test_converter_tracks_modulation () =
  let p = Converter.default_params in
  let c = Converter.build p in
  let mf =
    Mfdtd.solve
      ~options:{ Mfdtd.default_options with n1 = 16; n2 = 32 }
      c ~f1:p.Converter.f_mod ~f2:p.Converter.f_pwm
  in
  let grid = Mfdtd.node_grid mf Converter.output_node in
  (* fast-axis mean per slow sample follows the input modulation shape:
     peak near t1 = T/4, trough near 3T/4 *)
  let mean i1 = Stats.mean (Mat.row grid i1) in
  Alcotest.(check bool) "peak in the first half" true (mean 4 > mean 12);
  (* swing matches the modulation depth times the conversion gain *)
  let swing = mean 4 -. mean 12 in
  Alcotest.(check bool)
    (Printf.sprintf "swing %.3f plausible" swing)
    true
    (swing > 0.05 && swing < 0.5)

(* ------------------------------------------------------------- deck *)

let test_deck_noise_directive () =
  let text = "R1 out 0 1k\nC1 out 0 1p\n.noise 1e3 1e9\n.print out\n" in
  let _, dirs = Rfkit_circuit.Deck.parse_string text in
  Alcotest.(check bool) "parsed" true
    (List.exists
       (function
         | Rfkit_circuit.Deck.Noise_sweep { f_start; f_stop } ->
             f_start = 1e3 && f_stop = 1e9
         | _ -> false)
       dirs)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ( "circuits.mixer",
      [ slow "fig4 numbers" test_mixer_fig4_numbers; slow "scaled" test_mixer_scales ] );
    ( "circuits.modulator",
      [
        tc "fig1 numbers" test_modulator_fig1_numbers;
        tc "ideal rejects image" test_modulator_ideal_rejects_image;
      ] );
    ( "circuits.converter",
      [
        slow "engines agree" test_converter_engines_agree;
        slow "tracks modulation" test_converter_tracks_modulation;
      ] );
    ("circuits.deck", [ tc "noise directive" test_deck_noise_directive ]);
  ]
