(* Batch subsystem: hashing, spec expansion, the content-addressed cache,
   domain-parallel determinism, and the .param deck plumbing it rides on. *)

open Rfkit_batch
open Rfkit_circuit
module La = Rfkit_la
module Sup = Rfkit_solve.Supervisor

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- SHA-1 -- *)

let test_sha1_vectors () =
  check_str "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Hash.digest "");
  check_str "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Hash.digest "abc");
  check_str "two-block"
    "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Hash.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  (* length landing exactly on the 55/56-byte padding boundary *)
  check_str "55 bytes" (Hash.digest (String.make 55 'a')) (Hash.digest (String.make 55 'a'));
  check_str "million a"
    "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Hash.digest (String.make 1_000_000 'a'))

(* -------------------------------------------------------------- spec -- *)

let test_axis_grammar () =
  let a = Spec.parse_axis "R1=1k:10k:log:8" in
  check_str "name upper" "R1" a.Spec.a_name;
  check_int "8 points" 8 (Array.length a.Spec.a_values);
  Alcotest.(check (float 1e-9)) "log lo" 1e3 a.Spec.a_values.(0);
  Alcotest.(check (float 1e-6)) "log hi" 1e4 a.Spec.a_values.(7);
  (* log spacing: constant ratio *)
  let r01 = a.Spec.a_values.(1) /. a.Spec.a_values.(0)
  and r67 = a.Spec.a_values.(7) /. a.Spec.a_values.(6) in
  Alcotest.(check (float 1e-9)) "constant ratio" r01 r67;
  let b = Spec.parse_axis "c2=0:5:lin:6" in
  check_str "lowercase name uppercased" "C2" b.Spec.a_name;
  Alcotest.(check (float 1e-12)) "lin step" 1.0 (b.Spec.a_values.(1) -. b.Spec.a_values.(0));
  let c = Spec.parse_axis "L1=1n,2.2n,4.7n" in
  check_int "comma list" 3 (Array.length c.Spec.a_values);
  Alcotest.(check (float 1e-18)) "suffix" 2.2e-9 c.Spec.a_values.(1);
  let d = Spec.parse_axis "VDD=3.3" in
  check_int "single value" 1 (Array.length d.Spec.a_values)

let expect_spec_error what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Spec_error" what
  | exception Spec.Spec_error _ -> ()

let test_axis_errors () =
  expect_spec_error "no equals" (fun () -> Spec.parse_axis "R1");
  expect_spec_error "bad scale" (fun () -> Spec.parse_axis "R1=1:2:cubic:4");
  expect_spec_error "log zero endpoint" (fun () -> Spec.parse_axis "R1=0:1k:log:4");
  expect_spec_error "one-point grid" (fun () -> Spec.parse_axis "R1=1:2:lin:1");
  expect_spec_error "bad count" (fun () -> Spec.parse_axis "R1=1:2:lin:x");
  expect_spec_error "bad number" (fun () -> Spec.parse_axis "R1=zap");
  expect_spec_error "unknown analysis" (fun () ->
      Spec.parse_analyses Spec.default_defaults "dc,warp");
  expect_spec_error "empty analyses" (fun () ->
      Spec.parse_analyses Spec.default_defaults "");
  expect_spec_error "corner without colon" (fun () -> Spec.parse_corner "fast");
  expect_spec_error "corner without overrides" (fun () -> Spec.parse_corner "fast:")

let test_corner_grammar () =
  let c = Spec.parse_corner "fast:R1=900,C1=0.9n" in
  check_str "name" "fast" c.Spec.c_name;
  check_int "two overrides" 2 (List.length c.Spec.c_overrides);
  Alcotest.(check (float 1e-15)) "suffix value" 0.9e-9 (List.assoc "C1" c.Spec.c_overrides)

(* ------------------------------------------------------------ expand -- *)

let axes2 = [ Spec.parse_axis "R1=1k,2k"; Spec.parse_axis "C2=10p,20p,30p" ]

let test_expand_shape () =
  let analyses = [ Spec.Dc; Spec.Tran { t_stop = 1e-6; dt = 1e-9 } ] in
  let corners = [ Spec.parse_corner "fast:C2=1p,X=1"; Spec.parse_corner "slow:X=2" ] in
  let jobs = Expand.expand ~axes:axes2 ~corners ~analyses in
  check_int "count" (2 * 6 * 2) (List.length jobs);
  check_int "count agrees" (List.length jobs) (Expand.count ~axes:axes2 ~corners ~analyses);
  List.iteri (fun i (j : Expand.job) -> check_int "sequential ids" i j.Expand.id) jobs;
  let j0 = List.nth jobs 0 in
  check_str "corner order" "fast" j0.Expand.corner;
  (* C2 is swept, so the fast corner's C2 override must lose to the axis *)
  Alcotest.(check (float 0.0)) "axis wins over corner" 10e-12
    (List.assoc "C2" j0.Expand.params);
  Alcotest.(check (float 0.0)) "corner-only param survives" 1.0
    (List.assoc "X" j0.Expand.params);
  (* params sorted by name *)
  check_bool "params sorted" true
    (List.for_all
       (fun (j : Expand.job) ->
         let names = List.map fst j.Expand.params in
         names = List.sort String.compare names)
       jobs);
  (* analyses innermost: job 0 dc, job 1 tran, same bindings *)
  let j1 = List.nth jobs 1 in
  check_bool "analysis innermost" true (j1.Expand.analysis <> j0.Expand.analysis);
  check_bool "same point" true (j0.Expand.params = j1.Expand.params);
  (* first axis slowest: R1 flips only every |C2| * |analyses| jobs *)
  let j4 = List.nth jobs 4 in
  Alcotest.(check (float 0.0)) "first axis slowest" 1000.0
    (List.assoc "R1" j4.Expand.params);
  let j6 = List.nth jobs 6 in
  Alcotest.(check (float 0.0)) "first axis advances" 2000.0
    (List.assoc "R1" j6.Expand.params)

let test_expand_nominal () =
  let jobs = Expand.expand ~axes:[] ~corners:[] ~analyses:[ Spec.Dc ] in
  check_int "one job" 1 (List.length jobs);
  check_str "implicit corner" "nominal" (List.hd jobs).Expand.corner

(* ------------------------------------------------------------- cache -- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Printf.sprintf "_batch_test_cache_%d_%d" (Unix.getpid ()) !n in
    if Sys.file_exists d then () else Unix.mkdir d 0o755;
    d

let test_cache_key () =
  let k ?(deck = "deck") ?(params = [ ("R1", 1e3) ]) ?(tag = "dc")
      ?(options = [ "node=out" ]) () =
    Cache.key ~deck_text:deck ~params ~analysis_tag:tag ~options
  in
  check_int "hex length" 40 (String.length (k ()));
  check_str "deterministic" (k ()) (k ());
  check_bool "deck text covered" true (k () <> k ~deck:"deck2" ());
  check_bool "params covered" true (k () <> k ~params:[ ("R1", 2e3) ] ());
  check_bool "tag covered" true (k () <> k ~tag:"tran[1:2]" ());
  check_bool "options covered" true (k () <> k ~options:[ "node=a" ] ());
  (* length prefixing: shifting a byte across a field boundary must not
     produce the same key *)
  check_bool "field boundaries" true
    (Cache.key ~deck_text:"ab" ~params:[] ~analysis_tag:"c" ~options:[]
    <> Cache.key ~deck_text:"a" ~params:[] ~analysis_tag:"bc" ~options:[])

let test_cache_roundtrip () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  let key = Cache.key ~deck_text:"d" ~params:[] ~analysis_tag:"dc" ~options:[] in
  Alcotest.(check (option string)) "miss first" None (Cache.lookup c key);
  Cache.store c key {|{"status":"ok","x":1}|};
  Alcotest.(check (option string)) "hit after store" (Some {|{"status":"ok","x":1}|})
    (Cache.lookup c key);
  let st = Cache.stats c in
  check_int "one miss" 1 st.Cache.misses;
  check_int "one hit" 1 st.Cache.hits;
  check_int "one store" 1 st.Cache.stores

let test_cache_corrupt_recovery () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  let key = Cache.key ~deck_text:"d" ~params:[] ~analysis_tag:"dc" ~options:[] in
  Cache.store c key {|{"status":"ok","x":1}|};
  (* find the entry file and garble it *)
  let sub = Filename.concat dir (String.sub key 0 2) in
  let entry = Filename.concat sub (key ^ ".jsonl") in
  check_bool "entry exists" true (Sys.file_exists entry);
  let oc = open_out entry in
  output_string oc "garbage, no checksum line";
  close_out oc;
  Alcotest.(check (option string)) "corrupt entry is a miss" None (Cache.lookup c key);
  check_bool "corrupt entry deleted" false (Sys.file_exists entry);
  let st = Cache.stats c in
  check_int "eviction counted" 1 st.Cache.evictions;
  (* checksum mismatch (valid shape, wrong hash) also evicts *)
  Cache.store c key {|{"status":"ok","x":1}|};
  let oc = open_out entry in
  output_string oc "{\"status\":\"ok\",\"x\":2}\n#sha1:";
  output_string oc (Hash.digest "something else");
  output_string oc "\n";
  close_out oc;
  Alcotest.(check (option string)) "checksum mismatch is a miss" None (Cache.lookup c key);
  check_int "second eviction" 2 (Cache.stats c).Cache.evictions

let test_cache_disabled () =
  let dir = fresh_dir () in
  let c = Cache.create ~enabled:false ~dir () in
  let key = Cache.key ~deck_text:"d" ~params:[] ~analysis_tag:"dc" ~options:[] in
  Cache.store c key "payload";
  Alcotest.(check (option string)) "no-cache bypasses" None (Cache.lookup c key);
  check_int "nothing stored" 0 (Cache.stats c).Cache.stores

(* ------------------------------------------------- runner determinism -- *)

let sweep_deck =
  "* parametric two-pole RC low-pass\n\
   .param R1=1k C2=100p\n\
   V1 in 0 DC 1\n\
   R1 in a {R1}\n\
   C1 a 0 1n\n\
   R2 a out 5k\n\
   C2 out 0 {C2}\n\
   .end\n"

let quiet_telemetry n = Telemetry.create ~progress:false ~total:n ()

let sweep_cfg ?(domains = 1) ?deadline () =
  {
    Runner.deck_text = sweep_deck;
    node = "out";
    domains;
    budget = None;
    tol_scale = 1.0;
    ordering = Rfkit_struct.Order.Natural;
    stats = false;
    deadline;
    grace = 2.0;
  }

let run_sweep ?(domains = 1) ?(cache = Cache.create ~enabled:false ~dir:"_unused" ())
    ~axes ~analyses () =
  Rfkit_solve.Deadline.clear_interrupt ();
  let jobs = Expand.expand ~axes ~corners:[] ~analyses in
  let cfg = sweep_cfg ~domains () in
  let telemetry = quiet_telemetry (List.length jobs) in
  let outcome = Runner.run cfg ~cache ~telemetry jobs in
  Telemetry.close telemetry;
  Array.map
    (function Some r -> r | None -> Alcotest.fail "unexpected empty slot")
    outcome.Runner.results

let report_lines results =
  Array.to_list (Array.map Report.line results)

let test_jobs1_vs_jobs4_identical () =
  let axes = [ Spec.parse_axis "R1=500:5k:log:4" ] in
  let analyses = [ Spec.Dc; Spec.Ac { f_start = 1e3; f_stop = 1e6; points_per_decade = 3 } ] in
  let r1 = run_sweep ~domains:1 ~axes ~analyses () in
  let r4 = run_sweep ~domains:4 ~axes ~analyses () in
  Alcotest.(check (list string)) "byte-identical reports"
    (report_lines r1) (report_lines r4)

let qcheck_jobs_determinism =
  QCheck.Test.make ~count:8 ~name:"sweep report independent of domain count"
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(int_range 1 3) (int_range 100 10_000)))
    (fun (extra_domains, ohms) ->
      QCheck.assume (ohms <> []);
      let values = String.concat "," (List.map string_of_int ohms) in
      let axes = [ Spec.parse_axis ("R1=" ^ values) ] in
      let analyses = [ Spec.Dc ] in
      let a = run_sweep ~domains:1 ~axes ~analyses () in
      let b = run_sweep ~domains:(1 + extra_domains) ~axes ~analyses () in
      report_lines a = report_lines b)

let test_runner_cache_rerun () =
  let dir = fresh_dir () in
  let cache = Cache.create ~dir () in
  let axes = [ Spec.parse_axis "R1=1k,2k,3k" ] in
  let cold = run_sweep ~cache ~axes ~analyses:[ Spec.Dc ] () in
  check_bool "cold run computes" true
    (Array.for_all (fun r -> not r.Runner.cached) cold);
  let warm = run_sweep ~cache ~axes ~analyses:[ Spec.Dc ] () in
  check_bool "warm run all cached" true
    (Array.for_all (fun r -> r.Runner.cached) warm);
  Alcotest.(check (list string)) "warm report identical"
    (report_lines cold) (report_lines warm);
  let st = Cache.stats cache in
  check_int "3 misses then 3 hits" 3 st.Cache.misses;
  check_int "hits" 3 st.Cache.hits;
  (* corrupt one entry: recovered by recompute, never fatal *)
  let jobs = Expand.expand ~axes ~corners:[] ~analyses:[ Spec.Dc ] in
  let cfg = sweep_cfg () in
  let key = Runner.job_key cfg (List.hd jobs) in
  let entry = Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".jsonl") in
  let oc = open_out entry in
  output_string oc "truncated";
  close_out oc;
  let healed = run_sweep ~cache ~axes ~analyses:[ Spec.Dc ] () in
  Alcotest.(check (list string)) "healed report identical"
    (report_lines cold) (report_lines healed);
  check_int "eviction recorded" 1 (Cache.stats cache).Cache.evictions;
  check_bool "entry rewritten" true (Sys.file_exists entry)

let test_failed_job_does_not_kill_sweep () =
  (* hb on a deck with no periodic source: that job fails, dc succeeds *)
  let axes = [ Spec.parse_axis "R1=1k" ] in
  let analyses = [ Spec.Dc; Spec.Hb { freq = None; harmonics = 4 } ] in
  let results = run_sweep ~axes ~analyses () in
  check_int "both jobs reported" 2 (Array.length results);
  check_bool "dc ok" true (results.(0).Runner.status = Runner.Ok);
  check_bool "hb failed" true (results.(1).Runner.status = Runner.Failed);
  check_bool "failure is typed in payload" true
    (contains_sub ~sub:"periodic" results.(1).Runner.payload)

(* ------------------------------------------------------------ telemetry -- *)

let test_telemetry_log () =
  let log = Printf.sprintf "_batch_test_telemetry_%d.jsonl" (Unix.getpid ()) in
  let axes = [ Spec.parse_axis "R1=1k,2k" ] in
  let jobs = Expand.expand ~axes ~corners:[] ~analyses:[ Spec.Dc ] in
  let cfg = sweep_cfg () in
  let telemetry = Telemetry.create ~log_path:log ~progress:false ~total:2 () in
  let _ = Runner.run cfg ~cache:(Cache.create ~enabled:false ~dir:"_unused" ()) ~telemetry jobs in
  Telemetry.close telemetry;
  let ic = open_in log in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  (* queued + started + finished per job *)
  check_int "3 events per job" 6 (List.length !lines);
  check_bool "events are tagged json" true
    (List.for_all (fun l -> String.length l > 0 && l.[0] = '{') !lines);
  check_int "2 finished" 2
    (List.length
       (List.filter
          (contains_sub ~sub:{|"event":"finished"|})
          !lines));
  Sys.remove log

(* ---------------------------------------------------------- journal -- *)

module Deadline = Rfkit_solve.Deadline
module Faults = Rfkit_solve.Faults

let test_journal_roundtrip () =
  let dir = fresh_dir () in
  let run = Hash.digest "spec-a" in
  let j = Journal.create ~dir ~run ~total:3 in
  Journal.record_start j ~job:0;
  Journal.record_finish j ~job:0 ~status:"ok" ~key:(Hash.digest "k0") ~payload:None;
  Journal.record_start j ~job:1;
  (* a failed job's payload is inlined and must replay byte-exactly,
     including floats that do not survive a parse/re-render cycle *)
  let failed = {|{"status":"failed","analysis":"dc","cause":"x","v":0.1}|} in
  Journal.record_finish j ~job:1 ~status:"failed" ~key:(Hash.digest "k1")
    ~payload:(Some failed);
  Journal.record_start j ~job:2;
  Journal.close j;
  check_bool "journal kept by close" true (Journal.exists ~dir ~run);
  (match Journal.load ~dir ~run with
  | None -> Alcotest.fail "journal did not load"
  | Some r ->
      check_str "run id" run r.Journal.r_run;
      check_int "total" 3 r.Journal.r_total;
      check_int "two finished" 2 (Hashtbl.length r.Journal.r_finished);
      check_int "three started" 3 (List.length r.Journal.r_started);
      let e0 = Hashtbl.find r.Journal.r_finished 0 in
      check_str "ok status" "ok" e0.Journal.e_status;
      Alcotest.(check (option string)) "ok payload lives in the cache" None
        e0.Journal.e_payload;
      let e1 = Hashtbl.find r.Journal.r_finished 1 in
      Alcotest.(check (option string)) "failed payload byte-exact"
        (Some failed) e1.Journal.e_payload);
  let keys = Journal.referenced_keys ~dir in
  check_bool "finish keys pinned" true
    (Hashtbl.mem keys (Hash.digest "k0") && Hashtbl.mem keys (Hash.digest "k1"));
  check_int "one journal counted" 1 (Journal.count ~dir);
  (* reopen (resume) appends; finish_run deletes *)
  let j2 = Journal.create ~dir ~run ~total:3 in
  Journal.record_finish j2 ~job:2 ~status:"ok" ~key:(Hash.digest "k2") ~payload:None;
  (match Journal.load ~dir ~run with
  | Some r -> check_int "resume appended" 3 (Hashtbl.length r.Journal.r_finished)
  | None -> Alcotest.fail "reopened journal did not load");
  Journal.finish_run j2;
  check_bool "finish_run deletes" false (Journal.exists ~dir ~run)

let test_journal_torn_line () =
  let dir = fresh_dir () in
  let run = Hash.digest "spec-torn" in
  let j = Journal.create ~dir ~run ~total:2 in
  Journal.record_finish j ~job:0 ~status:"ok" ~key:(Hash.digest "k") ~payload:None;
  Journal.close j;
  (* simulate a crash mid-write: a torn, checksum-less final line *)
  let file = Journal.path ~dir ~run in
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc {|{"c":"deadbeef","v":{"event":"finish","job":1,"st|};
  close_out oc;
  match Journal.load ~dir ~run with
  | None -> Alcotest.fail "torn line must not poison the journal"
  | Some r ->
      check_int "intact records survive" 1 (Hashtbl.length r.Journal.r_finished);
      check_bool "torn record skipped" false (Hashtbl.mem r.Journal.r_finished 1)

(* replay is a last-wins map keyed by job id: appending the same finish
   records again, in any order, must not change what resume replays *)
let qcheck_journal_replay_idempotent =
  QCheck.Test.make ~count:30 ~name:"journal replay idempotent and order-insensitive"
    QCheck.(list_of_size Gen.(int_range 1 12) (pair (int_range 0 20) (int_range 0 2)))
    (fun records ->
      (* distinct job ids: order across different ids must not matter *)
      let seen = Hashtbl.create 8 in
      let records =
        List.filter
          (fun (id, _) ->
            if Hashtbl.mem seen id then false
            else begin
              Hashtbl.add seen id ();
              true
            end)
          records
      in
      let status = function 0 -> "ok" | 1 -> "suspect" | _ -> "failed" in
      let write order ~dup =
        let dir = fresh_dir () in
        let run = Hash.digest "spec-q" in
        let j = Journal.create ~dir ~run ~total:32 in
        let emit (id, s) =
          Journal.record_finish j ~job:id ~status:(status s)
            ~key:(Hash.digest (string_of_int id))
            ~payload:(if s = 2 then Some {|{"status":"failed"}|} else None)
        in
        List.iter emit order;
        if dup then List.iter emit order;
        Journal.close j;
        match Journal.load ~dir ~run with
        | None -> Alcotest.fail "journal did not load"
        | Some r ->
            List.sort compare
              (Hashtbl.fold
                 (fun id e acc -> (id, e.Journal.e_status, e.Journal.e_key) :: acc)
                 r.Journal.r_finished [])
      in
      write records ~dup:false = write (List.rev records) ~dup:true)

(* ------------------------------------------------- resume and drain -- *)

let run_journaled ?(domains = 1) ?deadline ?replay ~cache ~dir ~run ~axes
    ~analyses () =
  Deadline.clear_interrupt ();
  let jobs = Expand.expand ~axes ~corners:[] ~analyses in
  let cfg = sweep_cfg ~domains ?deadline () in
  let telemetry = quiet_telemetry (List.length jobs) in
  let journal = Journal.create ~dir ~run ~total:(List.length jobs) in
  let outcome = Runner.run cfg ~cache ~telemetry ~journal ?replay jobs in
  Telemetry.close telemetry;
  if outcome.Runner.interrupted then Journal.close journal
  else Journal.finish_run journal;
  outcome

let lines_of outcome =
  List.filter_map
    (Option.map Report.line)
    (Array.to_list outcome.Runner.results)

let test_runner_resume_replay () =
  let dir = fresh_dir () in
  let run = Hash.digest "resume-spec" in
  let cache = Cache.create ~dir () in
  let axes = [ Spec.parse_axis "R1=1k,2k" ] in
  (* hb fails (no periodic source): exercises the inline-payload replay *)
  let analyses = [ Spec.Dc; Spec.Hb { freq = None; harmonics = 4 } ] in
  let full = run_journaled ~cache ~dir ~run ~axes ~analyses () in
  check_bool "uninterrupted run deletes journal" false (Journal.exists ~dir ~run);
  (* simulate a crashed run: journal as it would be left mid-flight *)
  let j = Journal.create ~dir ~run ~total:4 in
  let cfg = sweep_cfg () in
  let jobs = Expand.expand ~axes ~corners:[] ~analyses in
  List.iteri
    (fun i job ->
      if i < 3 then
        let r = Option.get (List.nth (Array.to_list full.Runner.results) i) in
        Journal.record_finish j ~job:i
          ~status:(match r.Runner.status with
                   | Runner.Ok -> "ok"
                   | Runner.Suspect -> "suspect"
                   | Runner.Failed -> "failed")
          ~key:(Runner.job_key cfg job)
          ~payload:
            (if r.Runner.status = Runner.Failed then Some r.Runner.payload
             else None))
    jobs;
  Journal.close j;
  let replay =
    match Journal.load ~dir ~run with
    | Some r -> r
    | None -> Alcotest.fail "no replay"
  in
  let resumed = run_journaled ~cache ~dir ~run ~replay ~axes ~analyses () in
  Alcotest.(check (list string)) "resumed report byte-identical"
    (lines_of full) (lines_of resumed);
  let results = Array.map Option.get resumed.Runner.results in
  check_int "three replayed" 3
    (Array.fold_left (fun n r -> if r.Runner.replayed then n + 1 else n) 0 results);
  check_bool "pending job re-executed" true (not results.(3).Runner.replayed);
  check_bool "resumed run deletes journal" false (Journal.exists ~dir ~run)

let test_runner_interrupt_drain () =
  let dir = fresh_dir () in
  let run = Hash.digest "drain-spec" in
  let cache = Cache.create ~dir () in
  let axes = [ Spec.parse_axis "R1=1k,2k,3k,4k" ] in
  let analyses = [ Spec.Dc ] in
  (* baseline for the byte-identical contract *)
  let full = run_journaled ~cache ~dir ~run:(Hash.digest "drain-base") ~axes ~analyses () in
  (* simulated SIGINT after the first completion: dispatch gate closes *)
  Faults.arm_process { Faults.process_none with interrupt_after = Some 1 };
  let interrupted = run_journaled ~cache:(Cache.create ~enabled:false ~dir ())
      ~dir ~run ~axes ~analyses () in
  Faults.disarm_process ();
  check_bool "flagged interrupted" true interrupted.Runner.interrupted;
  let completed =
    Array.fold_left
      (fun n -> function Some _ -> n + 1 | None -> n)
      0 interrupted.Runner.results
  in
  check_bool "some jobs left pending" true (completed < 4);
  check_bool "journal left resumable" true (Journal.exists ~dir ~run);
  (* resume completes the sweep and matches the uninterrupted report *)
  let replay =
    match Journal.load ~dir ~run with
    | Some r -> r
    | None -> Alcotest.fail "no replay after interrupt"
  in
  let resumed = run_journaled ~cache ~dir ~run ~replay ~axes ~analyses () in
  check_bool "resume completes" true (not resumed.Runner.interrupted);
  Alcotest.(check (list string)) "post-interrupt resume byte-identical"
    (lines_of full) (lines_of resumed);
  Deadline.clear_interrupt ()

let test_deadline_quarantine () =
  (* wedge job 0 in a busy loop: the per-job deadline must quarantine it
     as a typed failure while the rest of the sweep completes *)
  Deadline.clear_interrupt ();
  Faults.arm_process { Faults.process_none with stall_job = Some 0 };
  let axes = [ Spec.parse_axis "R1=1k,2k" ] in
  let jobs = Expand.expand ~axes ~corners:[] ~analyses:[ Spec.Dc ] in
  let cfg = sweep_cfg ~deadline:0.05 () in
  let telemetry = quiet_telemetry (List.length jobs) in
  let outcome =
    Runner.run cfg
      ~cache:(Cache.create ~enabled:false ~dir:"_unused" ())
      ~telemetry jobs
  in
  Telemetry.close telemetry;
  Faults.disarm_process ();
  let results = Array.map Option.get outcome.Runner.results in
  check_bool "stalled job quarantined" true
    (results.(0).Runner.status = Runner.Failed);
  check_bool "typed deadline cause" true
    (contains_sub ~sub:"deadline exceeded" results.(0).Runner.payload);
  (* the allotted seconds, not a measured time: deterministic rendering *)
  check_bool "allotted budget rendered" true
    (contains_sub ~sub:"0.05s budget" results.(0).Runner.payload);
  check_bool "other job unaffected" true (results.(1).Runner.status = Runner.Ok)

(* ---------------------------------------------------- cache bounding -- *)

let test_cache_gc_lru_and_pins () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  let key i = Cache.key ~deck_text:"d" ~params:[ ("I", float_of_int i) ] ~analysis_tag:"dc" ~options:[] in
  let path k = Filename.concat (Filename.concat dir (String.sub k 0 2)) (k ^ ".jsonl") in
  for i = 0 to 3 do
    Cache.store c (key i) (Printf.sprintf {|{"status":"ok","i":%d}|} i)
  done;
  (* pin down the LRU order explicitly via file times *)
  List.iteri
    (fun age i -> Unix.utimes (path (key i)) (float_of_int (1000 + age)) (float_of_int (1000 + age)))
    [ 0; 1; 2; 3 ];
  let entries, bytes = Cache.disk_usage ~dir in
  check_int "four entries" 4 entries;
  check_bool "bytes counted" true (bytes > 0);
  let st = Cache.stats c in
  check_int "stats entries" 4 st.Cache.entries;
  check_int "stats bytes" bytes st.Cache.bytes;
  (* oldest (key 0) is pinned: gc to 2 entries must spare it and evict
     the next-oldest instead *)
  let gs =
    Cache.gc ~dir ~max_entries:2 ~pinned:(fun k -> k = key 0) ()
  in
  check_int "examined all" 4 gs.Cache.gc_examined;
  check_int "evicted to cap" 2 gs.Cache.gc_evicted;
  check_int "pinned spared" 1 gs.Cache.gc_pinned;
  check_int "entries remaining" 2 gs.Cache.gc_entries;
  check_bool "pinned entry survives" true (Sys.file_exists (path (key 0)));
  check_bool "lru victim evicted" false (Sys.file_exists (path (key 1)));
  check_bool "newest survives" true (Sys.file_exists (path (key 3)));
  (* byte cap: gc everything unpinned *)
  let gs2 = Cache.gc ~dir ~max_bytes:1 () in
  check_int "byte cap evicts the rest" 2 gs2.Cache.gc_evicted;
  check_int "empty" 0 (fst (Cache.disk_usage ~dir))

let test_cache_hit_refreshes_lru () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  let key i = Cache.key ~deck_text:"d" ~params:[ ("I", float_of_int i) ] ~analysis_tag:"dc" ~options:[] in
  let path k = Filename.concat (Filename.concat dir (String.sub k 0 2)) (k ^ ".jsonl") in
  Cache.store c (key 0) {|{"status":"ok","i":0}|};
  Cache.store c (key 1) {|{"status":"ok","i":1}|};
  (* make key 0 the LRU victim, then touch it with a hit *)
  Unix.utimes (path (key 0)) 1000.0 1000.0;
  Unix.utimes (path (key 1)) 2000.0 2000.0;
  ignore (Cache.lookup c (key 0));
  let gs = Cache.gc ~dir ~max_entries:1 () in
  check_int "one evicted" 1 gs.Cache.gc_evicted;
  check_bool "hit entry survives gc" true (Sys.file_exists (path (key 0)));
  check_bool "untouched entry evicted" false (Sys.file_exists (path (key 1)))

(* ----------------------------------------------------- deck .param -- *)

let test_param_basics () =
  let nl, dirs =
    Deck.parse_string ".param R=2k\nV1 in 0 DC 1\nR1 in out {R}\nR2 out 0 2k\n.end\n"
  in
  check_int "three devices" 3 (List.length (Netlist.devices nl));
  (match List.find_opt (function Deck.Param _ -> true | _ -> false) dirs with
  | Some (Deck.Param { name; value; used }) ->
      check_str "name" "R" name;
      Alcotest.(check (float 0.0)) "value" 2000.0 value;
      check_bool "used" true used
  | _ -> Alcotest.fail "no Param directive")

let test_param_forward_reference () =
  (* device line references a .param defined later in the deck *)
  let _, dirs = Deck.parse_string "R1 a 0 {RL}\n.param RL=50\n.end\n" in
  check_int "param present" 1
    (List.length (List.filter (function Deck.Param _ -> true | _ -> false) dirs))

let test_param_override_wins () =
  let nl, _ =
    Deck.parse_string ~overrides:[ ("r", 100.0) ]
      ".param R=2k\nV1 in 0 DC 1\nR1 in 0 {R}\n.end\n"
  in
  let c = Mna.build nl in
  match Dc.solve_outcome c with
  | Sup.Converged (x, _) ->
      (* 1 V across the overridden 100 ohms: branch current = 1/100 *)
      let i = Mna.branch_index c "V1" in
      (match i with
      | Some k -> Alcotest.(check (float 1e-9)) "override resistance" 0.01 (Float.abs x.(k))
      | None -> Alcotest.fail "no branch current")
  | Sup.Failed f -> Alcotest.failf "dc failed: %s" (Sup.failure_to_string f)

let test_param_undefined_is_clear () =
  match Deck.parse_string "R1 a 0 {NOPE}\n.end\n" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Deck.Parse_error (line, msg) ->
      check_int "line" 1 line;
      check_bool "names the parameter" true (contains_sub ~sub:"NOPE" msg)

let test_param_lint_unused () =
  let _, located = Deck.parse_string_located ".param R=1k X=2\nR1 a 0 {R}\nV1 a 0 DC 1\n.end\n" in
  let ds = Rfkit_lint.Checks.param_hygiene located in
  check_int "one unused diagnostic" 1 (List.length ds);
  let d = List.hd ds in
  check_str "code" "L014" d.Rfkit_lint.Diagnostic.code;
  Alcotest.(check (option string)) "subject" (Some "X") d.Rfkit_lint.Diagnostic.subject

let test_param_lint_redefinition () =
  let _, located =
    Deck.parse_string_located ".param R=1k\n.param R=2k\nR1 a 0 {R}\nV1 a 0 DC 1\n.end\n"
  in
  let ds = Rfkit_lint.Checks.param_hygiene located in
  check_int "one redefinition diagnostic" 1 (List.length ds)

(* -------------------------------------------- sparse LU refactor reuse -- *)

let test_refactor_agrees_with_factor () =
  let nl, _ = Deck.parse_file "../examples/decks/rectifier.cir" in
  let c = Mna.build nl in
  let n = Mna.size c in
  let x1 = La.Vec.create n in
  let x2 = La.Vec.init n (fun i -> 0.3 +. (0.1 *. float_of_int i)) in
  let g1 = Mna.jac_g_sparse c x1 and g2 = Mna.jac_g_sparse c x2 in
  let symb, f1 = La.Sparse_lu.analyze g1 in
  let rhs = La.Vec.init n (fun i -> 1.0 +. float_of_int i) in
  let direct1 = La.Sparse_lu.solve (La.Sparse_lu.factor g1) rhs in
  let via1 = La.Sparse_lu.solve f1 rhs in
  Alcotest.(check (float 1e-10)) "analyze == factor at x1" 0.0
    (La.Vec.norm_inf (La.Vec.sub direct1 via1));
  (* same pattern, different values: numeric replay must match a fresh
     factorization *)
  let direct2 = La.Sparse_lu.solve (La.Sparse_lu.factor g2) rhs in
  let via2 = La.Sparse_lu.solve (La.Sparse_lu.refactor symb g2) rhs in
  Alcotest.(check (float 1e-10)) "refactor == factor at x2" 0.0
    (La.Vec.norm_inf (La.Vec.sub direct2 via2))

let test_factor_cached_counts () =
  let nl, _ = Deck.parse_file "../examples/decks/rectifier.cir" in
  let c = Mna.build nl in
  let n = Mna.size c in
  let g = Mna.jac_g_sparse c (La.Vec.create n) in
  La.Sparse_lu.reset_counts ();
  let cachev = ref None in
  let rhs = La.Vec.init n (fun i -> float_of_int (i + 1)) in
  let a = La.Sparse_lu.solve (La.Sparse_lu.factor_cached cachev g) rhs in
  let b = La.Sparse_lu.solve (La.Sparse_lu.factor_cached cachev g) rhs in
  Alcotest.(check (float 1e-12)) "cached solve agrees" 0.0
    (La.Vec.norm_inf (La.Vec.sub a b));
  let refactors, fulls = La.Sparse_lu.counts () in
  check_int "one full analysis" 1 fulls;
  check_int "one refactor" 1 refactors

let suite =
  [
    ( "batch.hash",
      [ Alcotest.test_case "sha1 vectors" `Quick test_sha1_vectors ] );
    ( "batch.spec",
      [
        Alcotest.test_case "axis grammar" `Quick test_axis_grammar;
        Alcotest.test_case "axis errors" `Quick test_axis_errors;
        Alcotest.test_case "corner grammar" `Quick test_corner_grammar;
      ] );
    ( "batch.expand",
      [
        Alcotest.test_case "shape and order" `Quick test_expand_shape;
        Alcotest.test_case "nominal corner" `Quick test_expand_nominal;
      ] );
    ( "batch.cache",
      [
        Alcotest.test_case "key derivation" `Quick test_cache_key;
        Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
        Alcotest.test_case "corrupt recovery" `Quick test_cache_corrupt_recovery;
        Alcotest.test_case "disabled bypass" `Quick test_cache_disabled;
      ] );
    ( "batch.runner",
      [
        Alcotest.test_case "jobs=1 vs jobs=4" `Quick test_jobs1_vs_jobs4_identical;
        QCheck_alcotest.to_alcotest qcheck_jobs_determinism;
        Alcotest.test_case "cache rerun + heal" `Quick test_runner_cache_rerun;
        Alcotest.test_case "failed job isolated" `Quick test_failed_job_does_not_kill_sweep;
        Alcotest.test_case "telemetry log" `Quick test_telemetry_log;
      ] );
    ( "batch.journal",
      [
        Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
        Alcotest.test_case "torn line skipped" `Quick test_journal_torn_line;
        QCheck_alcotest.to_alcotest qcheck_journal_replay_idempotent;
      ] );
    ( "batch.recovery",
      [
        Alcotest.test_case "resume replays journal" `Quick test_runner_resume_replay;
        Alcotest.test_case "interrupt drains and resumes" `Quick test_runner_interrupt_drain;
        Alcotest.test_case "deadline quarantines stall" `Quick test_deadline_quarantine;
      ] );
    ( "batch.cache_gc",
      [
        Alcotest.test_case "lru eviction and pins" `Quick test_cache_gc_lru_and_pins;
        Alcotest.test_case "hit refreshes lru" `Quick test_cache_hit_refreshes_lru;
      ] );
    ( "batch.param",
      [
        Alcotest.test_case "basics" `Quick test_param_basics;
        Alcotest.test_case "forward reference" `Quick test_param_forward_reference;
        Alcotest.test_case "override wins" `Quick test_param_override_wins;
        Alcotest.test_case "undefined is clear" `Quick test_param_undefined_is_clear;
        Alcotest.test_case "lint unused" `Quick test_param_lint_unused;
        Alcotest.test_case "lint redefinition" `Quick test_param_lint_redefinition;
      ] );
    ( "batch.sparse_lu",
      [
        Alcotest.test_case "refactor agrees" `Quick test_refactor_agrees_with_factor;
        Alcotest.test_case "factor_cached counts" `Quick test_factor_cached_counts;
      ] );
  ]
