(* The sparse-first operator core: CSR round-trips, Op constructors agree
   with their dense lowering, sparse LU matches dense LU (including the
   structurally-zero-diagonal branch rows partial pivoting must handle),
   sparse MNA stamps match the dense shims on random decks, and the
   dense-fallback and sparse-default DC paths agree on every shipped
   example deck. *)

open Rfkit_la
open Rfkit_circuit

let mat_close ?(tol = 1e-12) a b =
  a.Mat.rows = b.Mat.rows
  && a.Mat.cols = b.Mat.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.Mat.a b.Mat.a

let vec_close ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a b

(* ------------------------------------------------------- random inputs *)

let gen_dense =
  QCheck.Gen.(
    int_range 1 8 >>= fun n ->
    int_range 1 8 >>= fun m ->
    (* ~half the entries structurally zero so CSR paths see real sparsity *)
    list_size (return (n * m)) (oneof [ return 0.0; float_range (-5.0) 5.0 ])
    >|= fun vs ->
    let a = Array.of_list vs in
    Mat.init n m (fun i j -> a.((i * m) + j)))

let arb_dense =
  QCheck.make gen_dense ~print:(fun m ->
      Printf.sprintf "%dx%d dense" m.Mat.rows m.Mat.cols)

let gen_square =
  QCheck.Gen.(
    int_range 1 7 >>= fun n ->
    list_size (return (n * n)) (oneof [ return 0.0; float_range (-5.0) 5.0 ])
    >|= fun vs ->
    let a = Array.of_list vs in
    Mat.init n n (fun i j -> a.((i * n) + j)))

let arb_square =
  QCheck.make gen_square ~print:(fun m ->
      Printf.sprintf "%dx%d dense" m.Mat.rows m.Mat.cols)

(* random resistor/diode/cap ladders with a voltage source and an inductor
   so the MNA system has branch unknowns (zero structural diagonal) *)
let gen_deck =
  QCheck.Gen.(
    int_range 2 7 >>= fun stages ->
    list_size (return stages) (float_range 0.5 10.0) >|= fun rs ->
    let nl = Netlist.create () in
    Netlist.vsource nl "V1" "n0" "0" (Wave.Dc 1.2);
    List.iteri
      (fun k r ->
        let a = Printf.sprintf "n%d" k and b = Printf.sprintf "n%d" (k + 1) in
        Netlist.resistor nl (Printf.sprintf "R%d" k) a b (r *. 100.0);
        if k mod 2 = 0 then Netlist.diode nl (Printf.sprintf "D%d" k) b "0" ()
        else Netlist.capacitor nl (Printf.sprintf "C%d" k) b "0" 1e-12)
      rs;
    let last = Printf.sprintf "n%d" stages in
    Netlist.inductor nl "L1" last "0" 1e-9;
    Netlist.mosfet nl "M1" ~d:last ~g:"n1" ~s:"0" ();
    Netlist.resistor nl "RG" last "0" 1e4;
    Mna.build nl)

let arb_deck =
  QCheck.make gen_deck ~print:(fun c -> Printf.sprintf "deck n=%d" (Mna.size c))

let random_x c =
  Vec.init (Mna.size c) (fun i -> 0.3 *. sin (float_of_int (i + 1)))

(* ------------------------------------------------------------- qcheck *)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"sparse: of_dense/to_dense round-trips" ~count:100
    arb_dense (fun m -> mat_close (Sparse.to_dense (Sparse.of_dense m)) m)

let qcheck_transpose =
  QCheck.Test.make ~name:"sparse: transpose twice is identity" ~count:100
    arb_dense (fun m ->
      let s = Sparse.of_dense m in
      mat_close (Sparse.to_dense (Sparse.transpose (Sparse.transpose s))) m)

let qcheck_add =
  QCheck.Test.make ~name:"sparse: add matches dense add" ~count:100
    QCheck.(pair arb_dense arb_dense)
    (fun (a, b) ->
      QCheck.assume (a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols);
      mat_close
        (Sparse.to_dense (Sparse.add (Sparse.of_dense a) (Sparse.of_dense b)))
        (Mat.add a b))

(* one operator expression exercising every constructor *)
let op_of_dense m =
  let n = m.Mat.rows and cols = m.Mat.cols in
  let s = Sparse.of_dense m in
  let d = Vec.init n (fun i -> 0.5 +. float_of_int i) in
  Op.add
    (Op.scale 2.0 (Op.sparse s))
    (Op.add
       (Op.compose (Op.diag d) (Op.dense m))
       (Op.closure ~rows:n ~cols
          ~apply_t:(fun v -> Sparse.matvec_t s v)
          (fun v -> Sparse.matvec s v)))

let qcheck_op_matvec =
  QCheck.Test.make
    ~name:"op: matvec of every constructor agrees with to_dense" ~count:100
    arb_dense (fun m ->
      let op = op_of_dense m in
      let dense = Op.to_dense op in
      let v = Vec.init m.Mat.cols (fun i -> cos (float_of_int i)) in
      vec_close ~tol:1e-9 (Op.matvec op v) (Mat.matvec dense v))

let qcheck_op_matvec_t =
  QCheck.Test.make ~name:"op: matvec_t agrees with dense transpose matvec"
    ~count:100 arb_dense (fun m ->
      let op = op_of_dense m in
      let dense = Op.to_dense op in
      let v = Vec.init m.Mat.rows (fun i -> sin (float_of_int (i + 2))) in
      vec_close ~tol:1e-9 (Op.matvec_t op v) (Mat.matvec_t dense v))

let qcheck_op_diagonal =
  QCheck.Test.make ~name:"op: diagonal matches dense diagonal" ~count:100
    arb_square (fun m ->
      let op = Op.add (Op.scale 3.0 (Op.sparse (Sparse.of_dense m))) (Op.dense m) in
      let dense = Op.to_dense op in
      vec_close ~tol:1e-9 (Op.diagonal op)
        (Vec.init m.Mat.rows (fun i -> Mat.get dense i i)))

let qcheck_sparse_lu =
  QCheck.Test.make ~name:"sparse_lu: matches dense LU on random systems"
    ~count:100 arb_square (fun m ->
      (* shift the diagonal to make singularity unlikely, then knock one
         diagonal entry back to zero so partial pivoting is exercised *)
      let n = m.Mat.rows in
      let a = Mat.add m (Mat.scale 10.0 (Mat.identity n)) in
      if n > 1 then Mat.set a 0 0 0.0;
      let b = Vec.init n (fun i -> float_of_int (i + 1)) in
      match Lu.factor a with
      | exception Lu.Singular -> QCheck.assume_fail ()
      | f ->
          let x_dense = Lu.solve f b in
          let x_sparse = Sparse_lu.solve (Sparse_lu.factor (Sparse.of_dense a)) b in
          let xt_dense = Lu.solve_transposed f b in
          let xt_sparse =
            Sparse_lu.solve_transposed (Sparse_lu.factor (Sparse.of_dense a)) b
          in
          vec_close ~tol:1e-8 x_dense x_sparse
          && vec_close ~tol:1e-8 xt_dense xt_sparse)

let qcheck_jac_g =
  QCheck.Test.make ~name:"mna: sparse jac_g matches dense shim on random decks"
    ~count:60 arb_deck (fun c ->
      let x = random_x c in
      mat_close ~tol:0.0 (Sparse.to_dense (Mna.jac_g_sparse c x)) (Mna.jac_g c x))

let qcheck_jac_c =
  QCheck.Test.make ~name:"mna: sparse jac_c matches dense shim on random decks"
    ~count:60 arb_deck (fun c ->
      let x = random_x c in
      mat_close ~tol:0.0 (Sparse.to_dense (Mna.jac_c_sparse c x)) (Mna.jac_c c x))

let qcheck_op_factorize =
  QCheck.Test.make ~name:"op: factorize solves G + s0 C on random decks"
    ~count:60 arb_deck (fun c ->
      let x = random_x c in
      let op =
        Op.add (Mna.jac_g_op c x) (Op.scale 7.0 (Mna.jac_c_op c x))
      in
      let b = Vec.init (Mna.size c) (fun i -> sin (float_of_int i)) in
      match Op.factorize op with
      | exception Lu.Singular -> QCheck.assume_fail ()
      | f ->
          let r = Vec.sub (Op.matvec op (f.Op.solve b)) b in
          Vec.norm_inf r <= 1e-7 *. (1.0 +. Vec.norm_inf b))

(* ------------------------------------------------- complex sparse LU *)

let cvec_close ?(tol = 1e-10) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Cx.abs (Cx.( -: ) x y) <= tol) a b

let csparse_of_dense m =
  let rows = m.Cmat.rows and cols = m.Cmat.cols in
  let ts = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = Cmat.get m i j in
      if v <> Cx.zero then ts := (i, j, v) :: !ts
    done
  done;
  Csparse.of_triplets ~rows ~cols !ts

(* random diagonally-dominant complex systems with ~half the off-diagonal
   entries structurally zero *)
let gen_cdominant =
  QCheck.Gen.(
    int_range 1 7 >>= fun n ->
    list_size
      (return (2 * n * n))
      (oneof [ return 0.0; float_range (-2.0) 2.0 ])
    >|= fun vs ->
    let a = Array.of_list vs in
    Cmat.init n n (fun i j ->
        let k = 2 * ((i * n) + j) in
        let z = Cx.make a.(k) a.(k + 1) in
        if i = j then Cx.( +: ) z (Cx.make (8.0 +. float_of_int n) 3.0) else z))

let arb_cdominant =
  QCheck.make gen_cdominant ~print:(fun m ->
      Printf.sprintf "%dx%d complex" m.Cmat.rows m.Cmat.cols)

let qcheck_csparse_lu =
  QCheck.Test.make
    ~name:"csparse_lu: matches dense Clu on random dominant systems" ~count:100
    arb_cdominant (fun m ->
      let n = m.Cmat.rows in
      let b =
        Cvec.init n (fun i ->
            Cx.make (sin (float_of_int (i + 1))) (0.25 *. float_of_int i))
      in
      let f_sparse = Csparse_lu.factor (csparse_of_dense m) in
      let x_dense = Clu.solve (Clu.factor m) b in
      let x_sparse = Csparse_lu.solve f_sparse b in
      let xt_dense = Clu.solve (Clu.factor (Cmat.transpose m)) b in
      let xt_sparse = Csparse_lu.solve_transposed f_sparse b in
      cvec_close ~tol:1e-10 x_dense x_sparse
      && cvec_close ~tol:1e-10 xt_dense xt_sparse)

let qcheck_csparse_lu_perm =
  QCheck.Test.make
    ~name:"csparse_lu: permuted factor agrees with the natural one" ~count:60
    arb_cdominant (fun m ->
      let n = m.Cmat.rows in
      let s = csparse_of_dense m in
      let perm = Array.init n (fun i -> n - 1 - i) in
      let b = Cvec.init n (fun i -> Cx.make 1.0 (float_of_int i)) in
      cvec_close ~tol:1e-10
        (Csparse_lu.solve (Csparse_lu.factor s) b)
        (Csparse_lu.solve (Csparse_lu.factor ~perm s) b))

(* ------------------------------------- dense vs sparse DC on the decks *)

let example_decks =
  [
    "../examples/decks/lowpass.cir";
    "../examples/decks/mos_amp.cir";
    "../examples/decks/rectifier.cir";
    "../examples/decks/hard_dc.cir";
  ]

let test_dc_paths_agree () =
  List.iter
    (fun path ->
      let nl, _ = Deck.parse_file path in
      let solve solver =
        let c = Mna.build nl in
        match Dc.solve_outcome ~options:{ Dc.default_options with solver } c with
        | Rfkit_solve.Supervisor.Converged (x, _) -> x
        | Rfkit_solve.Supervisor.Failed f ->
            Alcotest.failf "%s: DC failed: %s" path
              (Rfkit_solve.Supervisor.failure_to_string f)
      in
      let x_dense = solve Dc.Dense_lu in
      let x_sparse = solve Dc.Sparse_direct in
      let x_gmres = solve Dc.Gmres_ilu in
      Alcotest.(check bool)
        (path ^ ": dense vs sparse-direct agree to 1e-9")
        true
        (Vec.norm_inf (Vec.sub x_dense x_sparse) <= 1e-9);
      Alcotest.(check bool)
        (path ^ ": dense vs ilu-gmres agree to 1e-9")
        true
        (Vec.norm_inf (Vec.sub x_dense x_gmres) <= 1e-9))
    example_decks

let test_tran_paths_agree () =
  let nl, _ = Deck.parse_file "../examples/decks/lowpass.cir" in
  let run solver =
    let c = Mna.build nl in
    Tran.run ~solver c ~t_stop:2e-6 ~dt:2e-8
  in
  let a = run Dc.Dense_lu and b = run Dc.Sparse_direct in
  let worst = ref 0.0 in
  Array.iteri
    (fun k xa ->
      worst := Float.max !worst (Vec.norm_inf (Vec.sub xa b.Tran.states.(k))))
    a.Tran.states;
  Alcotest.(check bool) "transient dense vs sparse states agree to 1e-9" true
    (!worst <= 1e-9)

let test_ilu_reduces_iterations () =
  (* ILU(0)-preconditioned GMRES on a stamped MNA Jacobian should converge
     in far fewer iterations than unpreconditioned GMRES *)
  let nl, _ = Deck.parse_file "../examples/decks/mos_amp.cir" in
  let c = Mna.build nl in
  let x = Vec.create (Mna.size c) in
  let g = Mna.jac_g_sparse c x in
  let g = Sparse.add g (Sparse.scaled_identity (Sparse.rows g) 1e-9) in
  let b = Vec.init (Mna.size c) (fun i -> 1.0 /. float_of_int (i + 1)) in
  let ilu = Sparse_lu.ilu0 g in
  let _, st =
    Rfkit_la.Krylov.gmres ~tol:1e-10 ~precond:(Sparse_lu.ilu_apply ilu)
      (Sparse.matvec g) b
  in
  Alcotest.(check bool) "preconditioned GMRES converges" true st.Krylov.converged

(* ------------------------------- complex sparse AC systems on the decks *)

let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun v -> v >= 0 && v < n && (not seen.(v)) && (seen.(v) <- true; true))
    p

(* G + j w C linearized at the DC operating point of every shipped deck:
   the complex sparse factor must match the dense Clu oracle, with and
   without the circuit's fill-reducing ordering *)
let test_ac_sparse_vs_dense_decks () =
  List.iter
    (fun path ->
      let nl, _ = Deck.parse_file path in
      let c = Mna.build nl in
      Mna.set_ordering c Rfkit_struct.Order.Btf_amd;
      let x0 = Dc.solve c in
      let perm = Mna.ordering_perm c in
      List.iter
        (fun freq ->
          let sp = Option.get (Cop.to_sparse_opt (Ac.system_op c x0 freq)) in
          let dense = Ac.system_at c x0 freq in
          let b =
            Cvec.init (Mna.size c) (fun i ->
                Cx.make (cos (float_of_int i)) (sin (float_of_int (i + 1))))
          in
          let xd = Clu.solve (Clu.factor dense) b in
          let xs = Csparse_lu.solve (Csparse_lu.factor sp) b in
          let xp = Csparse_lu.solve (Csparse_lu.factor ?perm sp) b in
          let scale = ref 1.0 in
          Array.iter (fun z -> scale := Float.max !scale (Cx.abs z)) xd;
          let ok name x =
            let worst = ref 0.0 in
            Array.iteri
              (fun i z -> worst := Float.max !worst (Cx.abs (Cx.( -: ) z xd.(i))))
              x;
            Alcotest.(check bool)
              (Printf.sprintf "%s @%g Hz: %s matches dense Clu" path freq name)
              true
              (!worst <= 1e-10 *. !scale)
          in
          ok "natural" xs;
          ok "permuted" xp)
        [ 1e3; 1e6; 1e9 ])
    example_decks

let test_ordering_perm_valid_on_decks () =
  List.iter
    (fun path ->
      let nl, _ = Deck.parse_file path in
      let c = Mna.build nl in
      Mna.set_ordering c Rfkit_struct.Order.Btf_amd;
      match Mna.ordering_perm c with
      | None -> Alcotest.fail (path ^ ": expected an ordering perm")
      | Some p ->
          Alcotest.(check bool)
            (path ^ ": ordering perm is a permutation")
            true (is_permutation p))
    example_decks

(* symbolic reuse ledger: same pattern refactors, a perm switch or pattern
   change re-analyzes *)
let test_csparse_factor_cached_counters () =
  let mk d01 =
    Csparse.of_triplets ~rows:2 ~cols:2
      [
        (0, 0, Cx.make 4.0 1.0);
        (0, 1, d01);
        (1, 0, Cx.re 2.0);
        (1, 1, Cx.make 1.0 3.0);
      ]
  in
  let a1 = mk (Cx.re 1.0) and a2 = mk (Cx.im 0.5) in
  let b = [| Cx.one; Cx.re 2.0 |] in
  let residual a x =
    let r = Csparse.matvec a x in
    let worst = ref 0.0 in
    Array.iteri
      (fun i z -> worst := Float.max !worst (Cx.abs (Cx.( -: ) z b.(i))))
      r;
    !worst
  in
  Csparse_lu.reset_counts ();
  let cache = ref None in
  let x1 = Csparse_lu.solve (Csparse_lu.factor_cached cache a1) b in
  let x2 = Csparse_lu.solve (Csparse_lu.factor_cached cache a2) b in
  Alcotest.(check bool) "first solve exact" true (residual a1 x1 <= 1e-12);
  Alcotest.(check bool) "refactored solve exact" true (residual a2 x2 <= 1e-12);
  let refac, full = Csparse_lu.counts () in
  Alcotest.(check int) "one symbolic analysis" 1 full;
  Alcotest.(check int) "one pivot-frozen refactor" 1 refac;
  Alcotest.(check bool) "fill ledger populated" true (Csparse_lu.fill_nnz () > 0);
  (* switching the ordering invalidates the cached plan *)
  let x3 = Csparse_lu.solve (Csparse_lu.factor_cached ~perm:[| 1; 0 |] cache a2) b in
  Alcotest.(check bool) "permuted solve exact" true (residual a2 x3 <= 1e-12);
  let refac, full = Csparse_lu.counts () in
  Alcotest.(check int) "perm switch re-analyzes" 2 full;
  Alcotest.(check int) "no extra refactor" 1 refac

let suite =
  [
    ( "op.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          qcheck_roundtrip;
          qcheck_transpose;
          qcheck_add;
          qcheck_op_matvec;
          qcheck_op_matvec_t;
          qcheck_op_diagonal;
          qcheck_sparse_lu;
          qcheck_csparse_lu;
          qcheck_csparse_lu_perm;
          qcheck_jac_g;
          qcheck_jac_c;
          qcheck_op_factorize;
        ] );
    ( "op.engines",
      [
        Alcotest.test_case "dc dense/sparse/gmres paths agree on example decks"
          `Quick test_dc_paths_agree;
        Alcotest.test_case "tran dense/sparse paths agree" `Quick
          test_tran_paths_agree;
        Alcotest.test_case "ilu0-preconditioned gmres converges" `Quick
          test_ilu_reduces_iterations;
        Alcotest.test_case "ac complex sparse vs dense Clu on example decks"
          `Quick test_ac_sparse_vs_dense_decks;
        Alcotest.test_case "btf-amd ordering perm is valid on example decks"
          `Quick test_ordering_perm_valid_on_decks;
        Alcotest.test_case "csparse_lu factor_cached counters" `Quick
          test_csparse_factor_cached_counters;
      ] );
  ]
