(* Tests for rfkit_em: geometry, Green's functions, MoM extraction, IES3
   compression, the FD/MoM Table-1 contrast, partial inductance, and the
   resonator assembly. *)

open Rfkit_la
open Rfkit_em

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ----------------------------------------------------------------- Geo3 *)

let test_geo3_vectors () =
  let a = Geo3.v3 1.0 2.0 3.0 and b = Geo3.v3 4.0 (-5.0) 6.0 in
  check_float "dot" 12.0 (Geo3.dot a b);
  let c = Geo3.cross (Geo3.v3 1.0 0.0 0.0) (Geo3.v3 0.0 1.0 0.0) in
  check_float "cross z" 1.0 c.Geo3.z;
  check_float "dist" (Geo3.norm (Geo3.sub a b)) (Geo3.dist a b);
  let m = Geo3.mirror_z 1.0 (Geo3.v3 0.0 0.0 3.0) in
  check_float "mirror" (-1.0) m.Geo3.z

let test_geo3_plate_mesh () =
  let plate =
    Geo3.mesh_plate ~name:"p" ~origin:(Geo3.v3 0.0 0.0 0.0) ~u:(Geo3.v3 1.0 0.0 0.0)
      ~v:(Geo3.v3 0.0 2.0 0.0) ~nu:4 ~nv:8
  in
  Alcotest.(check int) "panel count" 32 (Array.length plate.Geo3.panels);
  let total =
    Array.fold_left (fun s p -> s +. p.Geo3.area) 0.0 plate.Geo3.panels
  in
  check_float ~eps:1e-12 "total area" 2.0 total

let test_geo3_quadrature () =
  let p =
    Geo3.make_panel ~center:(Geo3.v3 0.0 0.0 0.0) ~half_u:(Geo3.v3 0.5 0.0 0.0)
      ~half_v:(Geo3.v3 0.0 0.25 0.0)
  in
  check_float ~eps:1e-12 "area" 0.5 p.Geo3.area;
  let pts = Geo3.quadrature_points p 3 in
  let wsum = Array.fold_left (fun s (_, w) -> s +. w) 0.0 pts in
  check_float ~eps:1e-12 "weights sum to area" 0.5 wsum

let test_geo3_spiral () =
  let cond, segs =
    Geo3.mesh_square_spiral ~name:"s" ~turns:2 ~outer:100e-6 ~width:5e-6
      ~spacing:5e-6 ~z:1e-6 ~segments_per_side:3
  in
  Alcotest.(check int) "sides" 8 (List.length segs);
  Alcotest.(check int) "panels" 24 (Array.length cond.Geo3.panels);
  (* all panels at the spiral height *)
  Array.iter
    (fun (p : Geo3.panel) -> check_float "height" 1e-6 p.Geo3.center.Geo3.z)
    cond.Geo3.panels

(* --------------------------------------------------------------- Kernel *)

let test_kernel_point () =
  let g = Kernel.free_space in
  let v = Kernel.eval g (Geo3.v3 0.0 0.0 0.0) (Geo3.v3 1.0 0.0 0.0) in
  check_float ~eps:1e-3 "coulomb" (1.0 /. (4.0 *. Float.pi *. Kernel.eps0)) v

let test_kernel_image_reduces () =
  (* a perfect ground plane image reduces the potential *)
  let free = Kernel.free_space in
  let grounded = Kernel.over_substrate ~z_interface:0.0 ~eps_ratio:1.0 in
  let p = Geo3.v3 0.0 0.0 1e-6 and q = Geo3.v3 1e-6 0.0 1e-6 in
  Alcotest.(check bool) "reduced" true (Kernel.eval grounded p q < Kernel.eval free p q)

let test_kernel_self_positive () =
  let p =
    Geo3.make_panel ~center:(Geo3.v3 0.0 0.0 0.0) ~half_u:(Geo3.v3 1e-6 0.0 0.0)
      ~half_v:(Geo3.v3 0.0 1e-6 0.0)
  in
  let v = Kernel.panel_potential Kernel.free_space ~at:p.Geo3.center p in
  Alcotest.(check bool) "positive and large" true (v > 0.0)

(* ------------------------------------------------------------------ MoM *)

let square_plate ?(z = 0.0) ?(n = 8) side name =
  Geo3.mesh_plate ~name ~origin:(Geo3.v3 (-.side /. 2.0) (-.side /. 2.0) z)
    ~u:(Geo3.v3 side 0.0 0.0) ~v:(Geo3.v3 0.0 side 0.0) ~nu:n ~nv:n

let test_mom_unit_square_capacitance () =
  (* capacitance of a unit square plate: C = eps0 * side * 0.367 * 4pi /
     ... classic result: C ~ 40.8 pF for a 1 m square (literature ~ 40.6-41) *)
  let p = Mom.make Kernel.free_space [| square_plate ~n:12 1.0 "sq" |] in
  let sol = Mom.solve_dense p in
  let c = Mom.self_capacitance sol 0 in
  Alcotest.(check bool)
    (Printf.sprintf "square plate %.3g pF" (c *. 1e12))
    true
    (c > 38e-12 && c < 43e-12)

let test_mom_parallel_plate () =
  let side = 1e-3 and gap = 50e-6 in
  let top = square_plate ~z:gap ~n:10 side "top" in
  let bottom = square_plate ~z:0.0 ~n:10 side "bottom" in
  let p = Mom.make Kernel.free_space [| top; bottom |] in
  let sol = Mom.solve_dense p in
  let c_mutual = Mom.coupling_capacitance sol 0 1 in
  let analytic = Mom.parallel_plate_analytic ~area:(side *. side) ~gap in
  (* fringing adds capacitance: expect within [1x, 1.6x] of the ideal *)
  Alcotest.(check bool)
    (Printf.sprintf "C = %.3g vs ideal %.3g" c_mutual analytic)
    true
    (c_mutual > 0.95 *. analytic && c_mutual < 1.6 *. analytic);
  (* the P matrix of the integral formulation is well conditioned (Table 1) *)
  Alcotest.(check bool)
    (Printf.sprintf "rcond %.2e" sol.Mom.rcond)
    true (sol.Mom.rcond > 1e-4)

let test_mom_symmetry () =
  let side = 1e-3 in
  let a = square_plate ~z:0.0 ~n:6 side "a" in
  let b = square_plate ~z:100e-6 ~n:6 side "b" in
  let p = Mom.make Kernel.free_space [| a; b |] in
  let sol = Mom.solve_dense p in
  check_float
    ~eps:(1e-6 *. Float.abs (Mat.get sol.Mom.cap_matrix 0 1))
    "C12 = C21"
    (Mat.get sol.Mom.cap_matrix 0 1)
    (Mat.get sol.Mom.cap_matrix 1 0)

(* ----------------------------------------------------------------- IES3 *)

let test_ies3_matvec_matches_dense () =
  let p = Mom.make Kernel.free_space [| square_plate ~n:16 1e-3 "sq" |] in
  let t = Ies3.build_mom p in
  let dense = Mom.dense_matrix p in
  let n = Mom.n_panels p in
  let x = Vec.init n (fun i -> sin (float_of_int i)) in
  let y_fast = Ies3.matvec t x in
  let y_dense = Mat.matvec dense x in
  let rel = Vec.dist2 y_fast y_dense /. Vec.norm2 y_dense in
  Alcotest.(check bool) (Printf.sprintf "relative error %.2e" rel) true (rel < 1e-4)

let test_ies3_compresses () =
  let p = Mom.make Kernel.free_space [| square_plate ~n:32 1e-3 "sq" |] in
  let t = Ies3.build_mom p in
  let st = Ies3.stats t in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f with %d lowrank blocks" st.Ies3.compression_ratio
       st.Ies3.lowrank_blocks)
    true
    (st.Ies3.compression_ratio > 1.6 && st.Ies3.lowrank_blocks > 0);
  (* kernel evaluations stay within a small multiple of n^2 at this size
     (asymptotically they fall below n^2; Fig 6's bench shows the trend) *)
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d entries" st.Ies3.entries_sampled (st.Ies3.n * st.Ies3.n))
    true
    (st.Ies3.entries_sampled < 2 * st.Ies3.n * st.Ies3.n)

let test_ies3_capacitance_matches_dense () =
  let p =
    Mom.make Kernel.free_space
      [| square_plate ~z:50e-6 ~n:10 1e-3 "top"; square_plate ~z:0.0 ~n:10 1e-3 "bot" |]
  in
  let dense = Mom.solve_dense p in
  let fast = Ies3.solve_capacitance p in
  let c_dense = Mom.coupling_capacitance dense 0 1 in
  let c_fast = -.Mat.get fast 0 1 in
  check_float ~eps:(0.01 *. c_dense) "capacitance agrees" c_dense c_fast

(* ------------------------------------------------------------------- FD *)

let test_fd_parallel_plate () =
  let cell = 10e-6 in
  let res = Fd.parallel_plate ~n:24 ~plate_cells:10 ~gap_cells:4 ~cell in
  (* plate side = 9 cells (10 nodes), area/gap known only coarsely: check
     the right order of magnitude vs the ideal formula *)
  let side = 9.0 *. cell in
  let analytic = Mom.parallel_plate_analytic ~area:(side *. side) ~gap:(4.0 *. cell) in
  Alcotest.(check bool)
    (Printf.sprintf "C = %.3g vs ideal %.3g" res.Fd.capacitance analytic)
    true
    (res.Fd.capacitance > analytic && res.Fd.capacitance < 4.0 *. analytic);
  (* sparse, volume discretization: huge unknown count, tiny density *)
  Alcotest.(check bool) "many unknowns" true (res.Fd.unknowns > 5000);
  Alcotest.(check bool) "sparse" true (res.Fd.density < 1e-2)

let test_fd_conditioning_degrades () =
  (* Table 1: differential-method conditioning worsens with refinement *)
  let r1 = Fd.parallel_plate ~n:10 ~plate_cells:4 ~gap_cells:2 ~cell:10e-6 in
  let r2 = Fd.parallel_plate ~n:18 ~plate_cells:8 ~gap_cells:4 ~cell:5e-6 in
  let k1 = Fd.condition_estimate r1.Fd.matrix in
  let k2 = Fd.condition_estimate r2.Fd.matrix in
  Alcotest.(check bool)
    (Printf.sprintf "cond %.1f -> %.1f" k1 k2)
    true (k2 > 1.5 *. k1)

(* ------------------------------------------------------------ Inductance *)

let straight len =
  {
    Inductance.start = Geo3.v3 0.0 0.0 0.0;
    stop = Geo3.v3 len 0.0 0.0;
    width = 10e-6;
    thickness = 1e-6;
  }

let test_inductance_self () =
  (* 1 mm of 10 um x 1 um trace: ~1 nH per mm rule of thumb *)
  let l = Inductance.self_inductance (straight 1e-3) in
  Alcotest.(check bool) (Printf.sprintf "L = %.3g nH" (l *. 1e9)) true
    (l > 0.5e-9 && l < 2e-9)

let test_inductance_mutual_orientation () =
  let a = straight 1e-3 in
  let b =
    {
      Inductance.start = Geo3.v3 0.0 100e-6 0.0;
      stop = Geo3.v3 1e-3 100e-6 0.0;
      width = 10e-6;
      thickness = 1e-6;
    }
  in
  let m_par = Inductance.mutual_inductance a b in
  Alcotest.(check bool) "parallel positive" true (m_par > 0.0);
  Alcotest.(check bool) "mutual below self" true
    (m_par < Inductance.self_inductance a);
  (* anti-parallel flips sign *)
  let b_rev = { b with Inductance.start = b.Inductance.stop; stop = b.Inductance.start } in
  check_float ~eps:(1e-6 *. m_par) "antiparallel" (-.m_par)
    (Inductance.mutual_inductance a b_rev);
  (* perpendicular couples not at all *)
  let c =
    {
      Inductance.start = Geo3.v3 0.0 0.0 0.0;
      stop = Geo3.v3 0.0 1e-3 0.0;
      width = 10e-6;
      thickness = 1e-6;
    }
  in
  check_float ~eps:1e-18 "perpendicular" 0.0 (Inductance.mutual_inductance a c)

let test_inductance_skin_effect () =
  (* thick conductor: 10 um x 5 um so 20 GHz skin depth (~0.5 um) bites *)
  let s = { (straight 1e-3) with Inductance.thickness = 5e-6 } in
  let r_dc = Inductance.dc_resistance ~sigma:Inductance.copper_sigma s in
  let r_low = Inductance.ac_resistance ~sigma:Inductance.copper_sigma ~freq:1e6 s in
  let r_high = Inductance.ac_resistance ~sigma:Inductance.copper_sigma ~freq:20e9 s in
  check_float ~eps:(1e-3 *. r_dc) "low frequency = dc" r_dc r_low;
  Alcotest.(check bool)
    (Printf.sprintf "skin raises R: %.3g -> %.3g" r_dc r_high)
    true
    (r_high > 1.2 *. r_dc)

let spiral_model = lazy (Inductance.spiral_on_substrate ~segments_per_side:3 ())

let test_spiral_inductance_plausible () =
  let m = Lazy.force spiral_model in
  (* 3-turn 300 um spiral: a few nH *)
  Alcotest.(check bool)
    (Printf.sprintf "L = %.3g nH" (m.Inductance.inductance *. 1e9))
    true
    (m.Inductance.inductance > 1e-9 && m.Inductance.inductance < 20e-9);
  Alcotest.(check bool)
    (Printf.sprintf "Cox = %.3g fF" (m.Inductance.c_ox *. 1e15))
    true
    (m.Inductance.c_ox > 0.5e-12 && m.Inductance.c_ox < 3e-12)

let test_spiral_frequency_response () =
  let m = Lazy.force spiral_model in
  let f_sr = Inductance.self_resonance m in
  (* below resonance the effective inductance is flat near L *)
  let l_low = Inductance.effective_inductance m (f_sr /. 100.0) in
  check_float ~eps:(0.05 *. m.Inductance.inductance) "flat low-frequency L"
    m.Inductance.inductance l_low;
  (* above resonance it goes capacitive (negative) *)
  let l_high = Inductance.effective_inductance m (2.0 *. f_sr) in
  Alcotest.(check bool) "capacitive above resonance" true (l_high < 0.0);
  (* Q rises then falls: sample three decades *)
  let q1 = Inductance.quality_factor m (f_sr /. 200.0) in
  let q2 = Inductance.quality_factor m (f_sr /. 10.0) in
  Alcotest.(check bool) (Printf.sprintf "Q grows %.2f -> %.2f" q1 q2) true (q2 > q1)

(* -------------------------------------------------------------- Sparams *)

let test_sparams_basics () =
  let open Sparams in
  let s_matched = s11_of_z (Cx.re 50.0) in
  check_float ~eps:1e-12 "matched" 0.0 (Cx.abs s_matched);
  let s_short = s11_of_z Cx.zero in
  check_float ~eps:1e-12 "short" (-1.0) s_short.Cx.re;
  let s_open = s11_of_z (Cx.re 1e12) in
  check_float ~eps:1e-6 "open" 1.0 s_open.Cx.re

let test_sparams_matrix_passive () =
  (* a resistive divider Z-matrix gives |S| <= 1 *)
  let z = Cmat.init 2 2 (fun i j -> if i = j then Cx.re 75.0 else Cx.re 25.0) in
  let s = Sparams.s_of_z z in
  for i = 0 to 1 do
    for j = 0 to 1 do
      Alcotest.(check bool) "passive" true (Cx.abs (Cmat.get s i j) <= 1.0)
    done
  done

(* ------------------------------------------------------------ Resonator *)

let test_resonator_assembly () =
  let ex = Resonator.extract () in
  Alcotest.(check bool) "positive elements" true
    (ex.Resonator.l1 > 0.0 && ex.Resonator.c1 > 0.0);
  (* coplanar side-by-side coils link opposing flux: mutual is negative
     and much smaller than the self inductances *)
  Alcotest.(check bool)
    (Printf.sprintf "coupling %.3g vs L %.3g" ex.Resonator.m_coupling ex.Resonator.l1)
    true
    (ex.Resonator.m_coupling <> 0.0
    && Float.abs ex.Resonator.m_coupling < 0.5 *. ex.Resonator.l1);
  let f0 = Resonator.resonant_frequency ex in
  let freqs = Array.init 61 (fun i -> f0 *. (0.2 +. (0.05 *. float_of_int i))) in
  let s21 = Resonator.s21 ex ~z0:50.0 ~freqs in
  (* transmission peaks somewhere near f0 and rolls off well below it *)
  let peak = ref 0.0 and peak_f = ref 0.0 in
  Array.iteri
    (fun i s ->
      let m = Cx.abs s in
      if m > !peak then begin
        peak := m;
        peak_f := freqs.(i)
      end)
    s21;
  Alcotest.(check bool)
    (Printf.sprintf "peak %.2f at %.3g Hz (f0 %.3g)" !peak !peak_f f0)
    true
    (!peak_f > 0.3 *. f0 && !peak_f < 3.0 *. f0);
  let low = Cx.abs s21.(0) in
  Alcotest.(check bool) "selectivity" true (!peak > 3.0 *. low)

(* ------------------------------------------------------------ properties *)

let qcheck_suite =
  let open QCheck in
  let panel_params =
    make
      Gen.(triple (float_range 1.0 50.0) (float_range 1.0 50.0) (float_range 0.5 100.0))
      ~print:Print.(triple float float float)
  in
  [
    Test.make ~name:"kernel: panel potential symmetric between equal panels"
      ~count:40 panel_params (fun (a_um, b_um, d_um) ->
        let a = a_um *. 1e-6 and b = b_um *. 1e-6 and d = d_um *. 1e-6 in
        let p1 =
          Geo3.make_panel ~center:(Geo3.v3 0.0 0.0 0.0)
            ~half_u:(Geo3.v3 (a /. 2.0) 0.0 0.0) ~half_v:(Geo3.v3 0.0 (b /. 2.0) 0.0)
        in
        let p2 =
          Geo3.make_panel ~center:(Geo3.v3 0.0 0.0 d)
            ~half_u:(Geo3.v3 (a /. 2.0) 0.0 0.0) ~half_v:(Geo3.v3 0.0 (b /. 2.0) 0.0)
        in
        let v12 = Kernel.panel_potential Kernel.free_space ~at:p1.Geo3.center p2 in
        let v21 = Kernel.panel_potential Kernel.free_space ~at:p2.Geo3.center p1 in
        Float.abs (v12 -. v21) < 1e-9 *. Float.abs v12);
    Test.make ~name:"kernel: potential decreases with distance" ~count:40
      panel_params (fun (a_um, b_um, d_um) ->
        let a = a_um *. 1e-6 and b = b_um *. 1e-6 and d = d_um *. 1e-6 in
        let p =
          Geo3.make_panel ~center:(Geo3.v3 0.0 0.0 0.0)
            ~half_u:(Geo3.v3 (a /. 2.0) 0.0 0.0) ~half_v:(Geo3.v3 0.0 (b /. 2.0) 0.0)
        in
        let v_near = Kernel.panel_potential Kernel.free_space ~at:(Geo3.v3 0.0 0.0 d) p in
        let v_far =
          Kernel.panel_potential Kernel.free_space ~at:(Geo3.v3 0.0 0.0 (2.0 *. d)) p
        in
        v_near > v_far && v_far > 0.0);
    Test.make ~name:"mom: capacitance matrix is a symmetric M-matrix" ~count:15
      (QCheck.make Gen.(float_range 20.0 200.0) ~print:Print.float)
      (fun gap_um ->
        let side = 500e-6 in
        let plate z name =
          Geo3.mesh_plate ~name
            ~origin:(Geo3.v3 (-.side /. 2.0) (-.side /. 2.0) z)
            ~u:(Geo3.v3 side 0.0 0.0) ~v:(Geo3.v3 0.0 side 0.0) ~nu:5 ~nv:5
        in
        let p =
          Mom.make Kernel.free_space
            [| plate (gap_um *. 1e-6) "top"; plate 0.0 "bottom" |]
        in
        let sol = Mom.solve_dense p in
        let m = sol.Mom.cap_matrix in
        Mat.get m 0 0 > 0.0
        && Mat.get m 1 1 > 0.0
        && Mat.get m 0 1 < 0.0
        && Float.abs (Mat.get m 0 1 -. Mat.get m 1 0)
           < 1e-3 *. Float.abs (Mat.get m 0 1)
        && Mat.get m 0 0 +. Mat.get m 0 1 > 0.0);
    Test.make ~name:"inductance: mutual shrinks with spacing" ~count:40
      (QCheck.make Gen.(float_range 10.0 500.0) ~print:Print.float)
      (fun gap_um ->
        let seg y =
          {
            Inductance.start = Geo3.v3 0.0 (y *. 1e-6) 0.0;
            stop = Geo3.v3 1e-3 (y *. 1e-6) 0.0;
            width = 10e-6;
            thickness = 1e-6;
          }
        in
        let m_near = Inductance.mutual_inductance (seg 0.0) (seg gap_um) in
        let m_far = Inductance.mutual_inductance (seg 0.0) (seg (2.0 *. gap_um)) in
        m_near > m_far && m_far > 0.0);
  ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  [
    ( "em.geo3",
      [
        tc "vectors" test_geo3_vectors;
        tc "plate mesh" test_geo3_plate_mesh;
        tc "quadrature" test_geo3_quadrature;
        tc "spiral" test_geo3_spiral;
      ] );
    ( "em.kernel",
      [
        tc "point" test_kernel_point;
        tc "image reduces" test_kernel_image_reduces;
        tc "self positive" test_kernel_self_positive;
      ] );
    ( "em.mom",
      [
        slow "unit square" test_mom_unit_square_capacitance;
        slow "parallel plate" test_mom_parallel_plate;
        tc "symmetry" test_mom_symmetry;
      ] );
    ( "em.ies3",
      [
        slow "matvec vs dense" test_ies3_matvec_matches_dense;
        slow "compresses" test_ies3_compresses;
        slow "capacitance" test_ies3_capacitance_matches_dense;
      ] );
    ( "em.fd",
      [ slow "parallel plate" test_fd_parallel_plate; slow "conditioning" test_fd_conditioning_degrades ] );
    ( "em.inductance",
      [
        tc "self" test_inductance_self;
        tc "mutual orientation" test_inductance_mutual_orientation;
        tc "skin effect" test_inductance_skin_effect;
        slow "spiral plausible" test_spiral_inductance_plausible;
        slow "spiral response" test_spiral_frequency_response;
      ] );
    ( "em.sparams",
      [ tc "basics" test_sparams_basics; tc "matrix passive" test_sparams_matrix_passive ] );
    ("em.resonator", [ slow "assembly" test_resonator_assembly ]);
    ("em.properties", List.map QCheck_alcotest.to_alcotest qcheck_suite);
  ]
