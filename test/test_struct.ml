(* Tests for the rfkit_struct structural-analysis layer: Dulmage-Mendelsohn
   matching and decomposition on known patterns, BTF+AMD ordering validity,
   symmetric permutation plumbing through Sparse_lu, the L021/L022/L023
   lint checks with line attribution, the engine pre-flight rejection path,
   and properties (permutation validity on random patterns, permuted and
   natural factorizations agreeing to 1e-10, of_triplets duplicate
   summing). *)

open Rfkit_circuit
open Rfkit_lint
module Sp = Rfkit_la.Sparse
module Lu = Rfkit_la.Sparse_lu
module Vec = Rfkit_la.Vec
module Dm = Rfkit_struct.Dm
module Amd = Rfkit_struct.Amd
module Order = Rfkit_struct.Order
module Sup = Rfkit_solve.Supervisor

let ones rows cols entries =
  Sp.of_triplets ~rows ~cols (List.map (fun (i, j) -> (i, j, 1.0)) entries)

let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      v >= 0 && v < n && not seen.(v) && (seen.(v) <- true; true))
    p

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let find_code c ds =
  match List.find_opt (fun d -> d.Diagnostic.code = c) ds with
  | Some d -> d
  | None ->
      Alcotest.failf "expected a %s diagnostic, got [%s]" c
        (String.concat "; " (List.map Diagnostic.to_string ds))

(* ------------------------------------------------- DM decomposition -- *)

let test_dm_full_rank () =
  (* needs an augmenting path: the greedy row0 -> col0 must be rematched *)
  let a = ones 2 2 [ (0, 0); (0, 1); (1, 0) ] in
  let d = Dm.decompose a in
  Alcotest.(check int) "rank" 2 d.Dm.rank;
  Alcotest.(check (list int)) "over_rows" [] d.Dm.over_rows;
  Alcotest.(check (list int)) "under_cols" [] d.Dm.under_cols;
  Alcotest.(check int) "structural_rank" 2 (Dm.structural_rank a)

let test_dm_deficient () =
  (* col 2 is empty and rows 1,2 compete for col 1: rank 2 of 3 *)
  let a = ones 3 3 [ (0, 0); (1, 1); (2, 1) ] in
  let d = Dm.decompose a in
  Alcotest.(check int) "rank" 2 d.Dm.rank;
  Alcotest.(check (list int)) "over_rows" [ 1; 2 ] d.Dm.over_rows;
  Alcotest.(check (list int)) "under_cols" [ 2 ] d.Dm.under_cols;
  (* the reach sets are canonical: the same decomposition of the same
     pattern with permuted triplet order must agree *)
  let b = ones 3 3 [ (2, 1); (0, 0); (1, 1) ] in
  let d' = Dm.decompose b in
  Alcotest.(check (list int)) "canonical over_rows" d.Dm.over_rows d'.Dm.over_rows;
  Alcotest.(check (list int)) "canonical under_cols" d.Dm.under_cols d'.Dm.under_cols

let test_dm_matching_consistency () =
  let a = ones 3 3 [ (0, 1); (1, 0); (1, 2); (2, 2) ] in
  let m = Dm.max_matching a in
  Alcotest.(check int) "size" 3 m.Dm.size;
  Array.iteri
    (fun i j ->
      if j >= 0 then
        Alcotest.(check int) (Printf.sprintf "col_match inverse of row %d" i) i
          m.Dm.col_match.(j))
    m.Dm.row_match

(* --------------------------------------------------- BTF + AMD order -- *)

let test_btf_blocks () =
  (* lower block-triangular: {0}, {1}, and the coupled pair {2,3} *)
  let a =
    ones 4 4 [ (0, 0); (1, 0); (1, 1); (2, 2); (2, 3); (3, 2); (3, 3) ]
  in
  let info = Order.compute_info Order.Btf_amd a in
  Alcotest.(check (list int)) "block sizes" [ 1; 1; 2 ]
    (List.sort compare info.Order.blocks);
  (match info.Order.perm with
  | None -> ()
  | Some p -> Alcotest.(check bool) "valid perm" true (is_permutation p));
  (* structurally singular pattern: BTF is undefined, degrade to AMD *)
  let s = ones 2 2 [ (0, 0); (1, 0) ] in
  let info_s = Order.compute_info Order.Btf_amd s in
  Alcotest.(check (list int)) "no blocks when singular" [] info_s.Order.blocks

let test_permute_sym () =
  let a = Sp.of_triplets ~rows:3 ~cols:3
      [ (0, 0, 1.0); (0, 2, 2.0); (1, 1, 3.0); (2, 0, 4.0); (2, 2, 5.0) ]
  in
  let p = [| 2; 0; 1 |] in
  let b = Sp.to_dense (Sp.permute_sym p a) in
  let da = Sp.to_dense a in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check (float 0.0))
        (Printf.sprintf "entry %d,%d" i j)
        (Rfkit_la.Mat.get da p.(i) p.(j))
        (Rfkit_la.Mat.get b i j)
    done
  done

let test_lu_perm_agreement () =
  (* arrow matrix: worst case for natural order, best case reversed *)
  let n = 6 in
  let entries = ref [] in
  for k = 0 to n - 1 do
    entries := (k, k, 4.0 +. float_of_int k) :: !entries;
    if k > 0 then entries := (0, k, 1.0) :: (k, 0, 1.0) :: !entries
  done;
  let a = Sp.of_triplets ~rows:n ~cols:n !entries in
  let b = Vec.init n (fun i -> float_of_int (i + 1)) in
  let x_nat = Lu.solve (Lu.factor a) b in
  let perm = Amd.order a in
  Alcotest.(check bool) "amd perm valid" true (is_permutation perm);
  let x_amd = Lu.solve (Lu.factor ~perm a) b in
  Alcotest.(check bool) "solutions agree" true
    (Vec.norm_inf (Vec.sub x_nat x_amd) <= 1e-10)

let test_factor_cached_perm_switch () =
  let a = Sp.of_triplets ~rows:2 ~cols:2
      [ (0, 0, 2.0); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 3.0) ]
  in
  let b = Vec.init 2 (fun i -> 1.0 +. float_of_int i) in
  let symb = ref None in
  Lu.reset_counts ();
  let x1 = Lu.solve (Lu.factor_cached symb a) b in
  let x2 = Lu.solve (Lu.factor_cached symb a) b in
  (* counts () = (refactorizations, full factorizations) *)
  Alcotest.(check (pair int int)) "second hit refactors" (1, 1) (Lu.counts ());
  (* switching the ordering must invalidate the symbolic cache *)
  let x3 = Lu.solve (Lu.factor_cached ~perm:[| 1; 0 |] symb a) b in
  Alcotest.(check (pair int int)) "perm change re-analyzes" (1, 2) (Lu.counts ());
  List.iter
    (fun (label, x) ->
      Alcotest.(check bool) label true (Vec.norm_inf (Vec.sub x1 x) <= 1e-12))
    [ ("refactor solution", x2); ("permuted solution", x3) ]

(* -------------------------------------------- lint L021 / L022 / L023 -- *)

let test_underdet_deck_lines () =
  let ds = lint_file "../examples/decks/bad/underdet.cir" in
  let l021 = find_code "L021" ds in
  Alcotest.(check (option int)) "L021 line" (Some 2) l021.Diagnostic.line;
  Alcotest.(check bool) "L021 error" true (Diagnostic.is_error l021);
  let l022 = find_code "L022" ds in
  Alcotest.(check (option int)) "L022 line" (Some 4) l022.Diagnostic.line;
  Alcotest.(check (option string)) "L022 subject" (Some "v(out)")
    l022.Diagnostic.subject;
  Alcotest.(check bool) "L022 error" true (Diagnostic.is_error l022)

let test_l023_index2_warning () =
  (* current source driving an inductor: v(a) = L dI/dt exists only by
     differentiating the constraint — the index-2-prone shape *)
  let ds = lint_string "I1 a 0 DC 1m\nL1 a 0 1u\n.tran 1u 1n\n.end\n" in
  let d = find_code "L023" ds in
  Alcotest.(check string) "severity" "warning"
    (Diagnostic.severity_label d.Diagnostic.severity);
  Alcotest.(check bool) "names the node" true
    (let msg = d.Diagnostic.message in
     let needle = "v(a)" in
     let nl = String.length needle and ml = String.length msg in
     let rec scan i = i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1)) in
     scan 0)

let test_l023_not_on_rc () =
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "in" "0" (Wave.Dc 1.0);
  Netlist.resistor nl "R1" "in" "out" 1e3;
  Netlist.capacitor nl "C1" "out" "0" 1e-9;
  Alcotest.(check (list string)) "RC is index-1" [] (codes (Checks.dae_index nl))

(* --------------------------------------------- engine pre-flight path -- *)

let test_dc_preflight_rejects () =
  (* a capacitor-only node: the DC G-pattern row of v(a) is empty *)
  let nl = Netlist.create () in
  Netlist.isource nl "I1" "a" "0" (Wave.Dc 1e-3);
  Netlist.capacitor nl "C1" "a" "0" 1e-9;
  match Dc.solve_outcome (Mna.build nl) with
  | Sup.Converged _ -> Alcotest.fail "expected a structural rejection"
  | Sup.Failed f ->
      (match f.Sup.cause with
      | Sup.Structurally_singular { rank; size } ->
          Alcotest.(check (pair int int)) "rank/size" (0, 1) (rank, size)
      | c -> Alcotest.failf "wrong cause: %s" (Sup.cause_to_string c));
      Alcotest.(check int) "zero attempts spent" 0 (List.length f.Sup.f_attempts)

let test_tran_preflight_rejects () =
  (* two ideal sources in parallel: singular in the G+C union pattern,
     so even the transient pre-flight must refuse *)
  let nl = Netlist.create () in
  Netlist.vsource nl "V1" "a" "0" (Wave.Dc 1.0);
  Netlist.vsource nl "V2" "a" "0" (Wave.Dc 1.0);
  match Tran.run_outcome (Mna.build nl) ~t_stop:1e-6 ~dt:1e-7 with
  | Sup.Converged _ -> Alcotest.fail "expected a structural rejection"
  | Sup.Failed f -> (
      match f.Sup.cause with
      | Sup.Structurally_singular { rank; size } ->
          Alcotest.(check (pair int int)) "rank/size" (2, 3) (rank, size)
      | c -> Alcotest.failf "wrong cause: %s" (Sup.cause_to_string c))

let test_shipped_decks_ordering_agreement () =
  List.iter
    (fun path ->
      let nl, _ = Deck.parse_file ("../examples/decks/" ^ path) in
      let solve mode =
        let c = Mna.build nl in
        Mna.set_ordering c mode;
        match Dc.solve_outcome c with
        | Sup.Converged (x, _) -> x
        | Sup.Failed f ->
            Alcotest.failf "%s failed under %s: %s" path
              (Order.mode_to_string mode)
              (Sup.cause_to_string f.Sup.cause)
      in
      let x_nat = solve Order.Natural in
      List.iter
        (fun mode ->
          let x = solve mode in
          let diff = Vec.norm_inf (Vec.sub x_nat x) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s agrees with natural" path
               (Order.mode_to_string mode))
            true (diff <= 1e-10))
        [ Order.Amd_only; Order.Btf_amd ])
    [ "lowpass.cir"; "mos_amp.cir"; "rectifier.cir"; "hard_dc.cir" ]

(* -------------------------------------------------------- properties -- *)

let qcheck_suite =
  let open QCheck in
  let pattern_arb =
    (* random square pattern with a full diagonal so a perfect matching
       always exists and BTF is well defined *)
    let gen =
      Gen.(
        int_range 1 12 >>= fun n ->
        list_size (int_range 0 (3 * n)) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
        >>= fun offdiag -> return (n, offdiag))
    in
    make gen ~print:Print.(pair int (list (pair int int)))
  in
  let build_dd (n, offdiag) =
    (* diagonally dominant values on the random pattern: always invertible,
       so natural and permuted factorizations can be compared exactly *)
    let off =
      List.map
        (fun (i, j) ->
          (i, j, if i = j then 0.0 else 0.3 +. (0.01 *. float_of_int ((i + (7 * j)) mod 13))))
        offdiag
    in
    let row_sums = Array.make n 0.0 in
    List.iter (fun (i, _, v) -> row_sums.(i) <- row_sums.(i) +. Float.abs v) off;
    let diag = List.init n (fun i -> (i, i, row_sums.(i) +. 1.0)) in
    Sp.of_triplets ~rows:n ~cols:n (diag @ off)
  in
  [
    Test.make ~name:"struct: AMD and BTF orderings are permutations" ~count:300
      pattern_arb (fun ((n, _) as spec) ->
        let a = build_dd spec in
        List.for_all
          (fun mode ->
            match Order.compute mode a with
            | None -> true
            | Some p -> Array.length p = n && is_permutation p)
          [ Order.Natural; Order.Amd_only; Order.Btf_amd ]);
    Test.make ~name:"struct: permuted factorization agrees with natural to 1e-10"
      ~count:200 pattern_arb (fun ((n, _) as spec) ->
        let a = build_dd spec in
        let b = Vec.init n (fun i -> Float.of_int ((i mod 5) - 2) +. 0.5) in
        let x_nat = Lu.solve (Lu.factor a) b in
        List.for_all
          (fun mode ->
            match Order.compute mode a with
            | None -> true
            | Some perm ->
                let x = Lu.solve (Lu.factor ~perm a) b in
                Vec.norm_inf (Vec.sub x_nat x) <= 1e-10)
          [ Order.Amd_only; Order.Btf_amd ]);
    Test.make ~name:"struct: structural rank bounds numeric behaviour" ~count:200
      pattern_arb (fun spec ->
        let a = build_dd spec in
        (* a full diagonal means full structural rank, always *)
        Dm.structural_rank a = Sp.rows a);
    Test.make ~name:"sparse: of_triplets sums duplicate entries" ~count:300
      (make
         Gen.(
           int_range 1 6 >>= fun n ->
           list_size (int_range 0 25)
             (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
                (float_range (-4.0) 4.0))
           >>= fun ts -> return (n, ts))
         ~print:Print.(pair int (list (triple int int float))))
      (fun (n, ts) ->
        let dense = Array.make_matrix n n 0.0 in
        List.iter (fun (i, j, v) -> dense.(i).(j) <- dense.(i).(j) +. v) ts;
        let got = Sp.to_dense (Sp.of_triplets ~rows:n ~cols:n ts) in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if Float.abs (Rfkit_la.Mat.get got i j -. dense.(i).(j)) > 1e-12 then
              ok := false
          done
        done;
        !ok);
  ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "struct.dm",
      [
        tc "full rank via augmenting path" test_dm_full_rank;
        tc "deficient pattern decomposition" test_dm_deficient;
        tc "matching arrays are inverse" test_dm_matching_consistency;
      ] );
    ( "struct.ordering",
      [
        tc "btf block detection" test_btf_blocks;
        tc "permute_sym definition" test_permute_sym;
        tc "lu agrees across orderings" test_lu_perm_agreement;
        tc "factor_cached perm switch" test_factor_cached_perm_switch;
        tc "shipped decks agree across orderings"
          test_shipped_decks_ordering_agreement;
      ] );
    ( "struct.lint",
      [
        tc "underdet deck line attribution" test_underdet_deck_lines;
        tc "L023 fires on I-source into inductor" test_l023_index2_warning;
        tc "L023 silent on RC" test_l023_not_on_rc;
      ] );
    ( "struct.preflight",
      [
        tc "dc rejects before factorizing" test_dc_preflight_rejects;
        tc "tran rejects on the union pattern" test_tran_preflight_rejects;
      ] );
    ("struct.properties", List.map QCheck_alcotest.to_alcotest qcheck_suite);
  ]
