(* Serve subsystem: wire framing, protocol codec roundtrips, bounded
   admission, the monotonic cache LRU clock, and a live in-process
   overload scenario (the Nth+1 sweep gets a typed [overloaded], never a
   hang). *)

open Rfkit_serve
module Json = Rfkit_batch.Json
module Spec = Rfkit_batch.Spec
module Cache = Rfkit_batch.Cache
module Deadline = Rfkit_solve.Deadline
module Faults = Rfkit_solve.Faults

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------- frame -- *)

let feed_events d chunk = Frame.feed d chunk

let test_frame_split () =
  let d = Frame.create () in
  (match feed_events d "a\nb\n" with
  | [ Frame.Frame "a"; Frame.Frame "b" ] -> ()
  | _ -> Alcotest.fail "two lines -> two frames");
  (* a frame may arrive in arbitrary chunks *)
  (match feed_events d "ab" with
  | [] -> ()
  | _ -> Alcotest.fail "incomplete line emits nothing");
  check_int "pending counts buffered bytes" 2 (Frame.pending d);
  check_bool "partial clock started" true (Frame.partial_since d <> None);
  (match feed_events d "c\n" with
  | [ Frame.Frame "abc" ] -> ()
  | _ -> Alcotest.fail "split feed reassembles");
  check_int "pending drained" 0 (Frame.pending d);
  check_bool "partial clock cleared" true (Frame.partial_since d = None)

let test_frame_torn () =
  let d = Frame.create () in
  (match feed_events d "abc" with
  | [] -> ()
  | _ -> Alcotest.fail "torn frame never surfaces as a request");
  check_int "torn tail observable" 3 (Frame.pending d)

let test_frame_oversized () =
  let d = Frame.create ~max_frame:4 () in
  (match feed_events d "abcdef\nok\n" with
  | [ Frame.Oversized n; Frame.Frame "ok" ] ->
      check_bool "oversized reports > cap" true (n > 4)
  | _ -> Alcotest.fail "oversized emitted once, then resync on newline");
  (* the oversized line's tail must not leak into the next frame *)
  (match feed_events d "x\n" with
  | [ Frame.Frame "x" ] -> ()
  | _ -> Alcotest.fail "decoder resyncs after oversize")

let test_frame_encode () =
  check_str "encode appends newline" "{}\n" (Frame.encode "{}")

(* ---------------------------------------------------- protocol codec -- *)

(* Finite floats only: non-finite values travel as quoted %h strings,
   which deliberately do not parse back as numbers. *)
let finite_float =
  QCheck.Gen.map (fun f -> if Float.is_finite f then f else 0.0) QCheck.Gen.float

(* Arbitrary bytes, embedded newlines and non-ASCII included: the JSON
   renderer escapes control characters, so framing survives anything. *)
let byte_string =
  QCheck.Gen.string_size ~gen:QCheck.Gen.char (QCheck.Gen.int_bound 24)

let gen_defaults =
  QCheck.Gen.(
    map
      (fun ((f_start, f_stop, ppd, t_stop), (dt, freq, harmonics, steps)) ->
        {
          Spec.d_f_start = f_start;
          d_f_stop = f_stop;
          d_points_per_decade = ppd;
          d_t_stop = t_stop;
          d_dt = dt;
          d_freq = freq;
          d_harmonics = harmonics;
          d_steps = steps;
        })
      (pair
         (quad finite_float finite_float (int_bound 50) finite_float)
         (quad finite_float (option finite_float) (int_bound 50) (int_bound 1000))))

let gen_submit =
  QCheck.Gen.(
    map
      (fun ((deck, node, analyses), (params, corners, defaults, (ev, nl))) ->
        Protocol.Submit
          {
            Protocol.s_deck = deck;
            s_params = params;
            s_corners = corners;
            s_analyses = analyses;
            s_node = node;
            s_defaults = defaults;
            s_events = ev;
            s_no_lint = nl;
          })
      (pair
         (triple byte_string byte_string byte_string)
         (quad
            (list_size (int_bound 4) byte_string)
            (list_size (int_bound 4) byte_string)
            gen_defaults (pair bool bool))))

let gen_request =
  QCheck.Gen.(
    frequency
      [
        (4, gen_submit);
        (1, return Protocol.Status);
        (1, map (fun r -> Protocol.Poll { p_run = r }) byte_string);
        (1, map (fun r -> Protocol.Cancel { c_run = r }) byte_string);
      ])

let qcheck_request_roundtrip =
  QCheck.Test.make ~count:300 ~name:"protocol request codec roundtrips"
    (QCheck.make gen_request)
    (fun r ->
      match Protocol.request_of_json (Protocol.request_to_json r) with
      | Ok r' -> r = r'
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let test_error_code_roundtrip () =
  List.iter
    (fun c ->
      match Protocol.error_code_of_string (Protocol.error_code_to_string c) with
      | Some c' when c = c' -> ()
      | _ -> Alcotest.fail "error code alphabet must roundtrip")
    [
      Protocol.Overloaded;
      Protocol.Bad_request;
      Protocol.Frame_too_large;
      Protocol.Unknown_run;
    ];
  check_bool "unknown code rejected" true
    (Protocol.error_code_of_string "nope" = None)

let test_error_response () =
  let body = Protocol.error ~detail:[ ("detail", Json.str "queue full") ]
      Protocol.Overloaded in
  match Protocol.response_of_json body with
  | Ok (Protocol.R_error { e_code = Protocol.Overloaded; e_detail }) ->
      check_str "detail carries whole body" body e_detail
  | _ -> Alcotest.fail "typed overloaded response"

(* The raw-splice contract: whatever bytes the server renders as the
   report line come back verbatim from the client-side decoder, even
   when re-rendering a parsed float would not reproduce them. *)
let qcheck_report_splice =
  QCheck.Test.make ~count:300 ~name:"report frame splices raw line bytes"
    (QCheck.make QCheck.Gen.(pair byte_string (int_bound 10_000)))
    (fun (s, job) ->
      let line =
        Json.obj
          [ ("v", Json.str s); ("x", "0.30000000000000004"); ("job", Json.int job) ]
      in
      let frame =
        Protocol.report_event ~run:(String.make 40 'a') ~job ~line
      in
      match Protocol.response_of_json frame with
      | Ok (Protocol.R_report { r_job; r_line }) -> r_job = job && r_line = line
      | _ -> QCheck.Test.fail_report "report frame did not decode")

let test_ack_done_decode () =
  let run = String.make 40 'b' in
  (match
     Protocol.response_of_json
       (Protocol.ack ~run ~jobs:4 ~replayed:2 ~attached:false)
   with
  | Ok (Protocol.R_ack { a_run; a_jobs = 4; a_replayed = 2; a_attached = false })
    when a_run = run -> ()
  | _ -> Alcotest.fail "ack decode");
  match
    Protocol.response_of_json
      (Protocol.done_event ~run ~jobs:4 ~ok:3 ~suspect:0 ~failed:1 ~replayed:2
         ~cancelled:false ~interrupted:true)
  with
  | Ok
      (Protocol.R_done
         {
           d_run;
           d_jobs = 4;
           d_ok = 3;
           d_suspect = 0;
           d_failed = 1;
           d_replayed = 2;
           d_cancelled = false;
           d_interrupted = true;
         })
    when d_run = run -> ()
  | _ -> Alcotest.fail "done decode"

(* ------------------------------------------------------------ squeue -- *)

let test_squeue_bounded () =
  let q = Squeue.create ~cap:4 in
  check_bool "batch fits" true (Squeue.push_all q [ 1; 2; 3 ]);
  (* all-or-nothing: the batch that does not fit is refused whole, and
     the refusal returns immediately — the Nth+1 producer never hangs *)
  check_bool "overflow batch refused" false (Squeue.push_all q [ 4; 5 ]);
  check_int "refused batch left no residue" 3 (Squeue.length q);
  check_bool "exact fill accepted" true (Squeue.push_all q [ 4 ]);
  check_bool "single push refused at cap" false (Squeue.push q 5);
  check_int "fifo" 1 (Option.get (Squeue.pop q));
  check_int "fifo" 2 (Option.get (Squeue.pop q));
  check_bool "freed capacity re-admits" true (Squeue.push q 6)

let test_squeue_close () =
  let q = Squeue.create ~cap:4 in
  check_bool "push before close" true (Squeue.push_all q [ 7; 8 ]);
  Squeue.close q;
  check_bool "push after close refused" false (Squeue.push q 9);
  check_int "queued tasks still handed out" 7 (Option.get (Squeue.pop q));
  check_int "queued tasks still handed out" 8 (Option.get (Squeue.pop q));
  check_bool "drained close pops None" true (Squeue.pop q = None)

(* ---------------------------------------------------- cache LRU clock -- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d = Printf.sprintf "_serve_test_cache_%d_%d" (Unix.getpid ()) !n in
    if Sys.file_exists d then () else Unix.mkdir d 0o755;
    d

let entry_path dir key =
  Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".jsonl")

(* Three stores then three hits inside (usually) one filesystem clock
   tick: only the strictly monotonic touch stamps keep the recency order
   exact, so gc must evict in hit order, not directory-walk order. *)
let test_cache_monotonic_lru () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  let key deck = Cache.key ~deck_text:deck ~params:[] ~analysis_tag:"dc" ~options:[] in
  let ka = key "a" and kb = key "b" and kc = key "c" in
  List.iter (fun k -> Cache.store c k "{}") [ ka; kb; kc ];
  (* recency order after hits: kc (oldest), then ka, then kb (newest) *)
  List.iter (fun k -> ignore (Cache.lookup c k)) [ kc; ka; kb ];
  let g = Cache.gc ~dir ~max_entries:1 () in
  check_int "two evicted" 2 g.Cache.gc_evicted;
  check_bool "most recent hit survives" true (Cache.lookup c kb <> None);
  check_bool "older hits evicted" true
    (Cache.lookup c ka = None && Cache.lookup c kc = None)

(* When stamps DO collide (coarse mtime, entries touched by a different
   cache instance), eviction order falls back to the key: ascending sort
   evicts the smaller key first, deterministically. *)
let test_cache_gc_tie_break () =
  let dir = fresh_dir () in
  let c = Cache.create ~dir () in
  let key deck = Cache.key ~deck_text:deck ~params:[] ~analysis_tag:"dc" ~options:[] in
  let k1 = key "x" and k2 = key "y" in
  Cache.store c k1 "{}";
  Cache.store c k2 "{}";
  let t = 1.0e9 in
  Unix.utimes (entry_path dir k1) t t;
  Unix.utimes (entry_path dir k2) t t;
  let g = Cache.gc ~dir ~max_entries:1 () in
  check_int "one evicted" 1 g.Cache.gc_evicted;
  let survivor = if String.compare k1 k2 > 0 then k1 else k2 in
  let evicted = if survivor == k1 then k2 else k1 in
  check_bool "larger key survives an exact mtime tie" true
    (Cache.lookup c survivor <> None && Cache.lookup c evicted = None)

(* ------------------------------------------- live overload, no hang -- *)

let test_deck =
  "* two-pole RC low-pass\n\
   .param R1=1k\n\
   V1 in 0 DC 1\n\
   R1 in a {R1}\n\
   C1 a 0 1n\n\
   R2 a out 5k\n\
   C2 out 0 100p\n\
   .end\n"

let test_defaults =
  {
    Spec.d_f_start = 1e3;
    d_f_stop = 1e6;
    d_points_per_decade = 2;
    d_t_stop = 1e-6;
    d_dt = 1e-8;
    d_freq = None;
    d_harmonics = 4;
    d_steps = 16;
  }

let submit ~params =
  Protocol.Submit
    {
      Protocol.s_deck = test_deck;
      s_params = params;
      s_corners = [];
      s_analyses = "dc";
      s_node = "out";
      s_defaults = test_defaults;
      s_events = false;
      s_no_lint = false;
    }

let connect_with_retry path =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.close fd;
        Unix.sleepf 0.02;
        go ()
  in
  go ()

let send_request fd req =
  let bytes = Frame.encode (Protocol.request_to_json req) in
  let n = String.length bytes in
  let rec put off =
    if off < n then put (off + Unix.write_substring fd bytes off (n - off))
  in
  put 0

(* Read one newline-terminated response with a hard select timeout: the
   whole point of the overload contract is that this never blocks. *)
let read_response fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i -> String.sub (Buffer.contents buf) 0 i
    | None ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then Alcotest.fail "response timed out (hang)"
        else begin
          match Unix.select [ fd ] [] [] left with
          | [], _, _ -> Alcotest.fail "response timed out (hang)"
          | _ ->
              let n = Unix.read fd chunk 0 (Bytes.length chunk) in
              if n = 0 then Alcotest.fail "connection closed before response";
              Buffer.add_subbytes buf chunk 0 n;
              go ()
        end
  in
  go ()

(* One worker wedged on job 0 (fault-injected stall) plus one queued job
   leaves a 2-slot queue with at most one free slot in EVERY
   interleaving, so a second 2-job sweep is deterministically refused
   with a typed [overloaded] — and the refusal must arrive promptly even
   though the server is saturated. *)
let test_server_overload () =
  let dir = fresh_dir () in
  let socket_path = Printf.sprintf "_serve_test_%d.sock" (Unix.getpid ()) in
  if Sys.file_exists socket_path then Sys.remove socket_path;
  Deadline.clear_interrupt ();
  Faults.arm_process
    {
      Faults.crash_after = None;
      interrupt_after = None;
      stall_job = Some 0;
      accept_stall = None;
    };
  let cfg =
    {
      Server.default_config with
      Server.socket_path;
      workers = 1;
      queue_cap = 2;
      cache_dir = dir;
      no_cache = true;
      job_deadline = Some 30.0;
      grace = 0.2;
      request_timeout = Some 5.0;
    }
  in
  let server = Domain.spawn (fun () -> Server.run cfg) in
  Fun.protect
    ~finally:(fun () ->
      Deadline.begin_drain ~grace:0.2;
      ignore (Domain.join server);
      Deadline.clear_interrupt ();
      Deadline.set_interrupt_action Deadline.Raise;
      Faults.disarm_process ();
      if Sys.file_exists socket_path then Sys.remove socket_path)
    (fun () ->
      (* sweep A: job 0 wedges in the worker, job 1 parks in the queue *)
      let a = connect_with_retry socket_path in
      send_request a (submit ~params:[ "R1=1000,2000" ]);
      (match Protocol.response_of_json (read_response a) with
      | Ok (Protocol.R_ack { a_jobs = 2; _ }) -> ()
      | other ->
          Alcotest.failf "sweep A not acked: %s"
            (match other with Ok _ -> "wrong response" | Error e -> e));
      (* sweep B: different params (same params would attach to A's run
         hash), needs 2 slots, at most 1 is free -> typed refusal *)
      let b = connect_with_retry socket_path in
      send_request b (submit ~params:[ "R1=3000,4000" ]);
      (match Protocol.response_of_json (read_response b) with
      | Ok (Protocol.R_error { e_code = Protocol.Overloaded; _ }) -> ()
      | Ok _ -> Alcotest.fail "saturated server must refuse, not hang or ack"
      | Error e -> Alcotest.failf "undecodable refusal: %s" e);
      (* the refused connection stays usable for cheap requests *)
      send_request b Protocol.Status;
      (match Protocol.response_of_json (read_response b) with
      | Ok (Protocol.R_other _) -> ()
      | _ -> Alcotest.fail "status after refusal");
      Unix.close a;
      Unix.close b)

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "frame split and reassembly" `Quick test_frame_split;
        Alcotest.test_case "torn frame never surfaces" `Quick test_frame_torn;
        Alcotest.test_case "oversized frame typed + resync" `Quick
          test_frame_oversized;
        Alcotest.test_case "frame encode" `Quick test_frame_encode;
        QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_report_splice;
        Alcotest.test_case "error code alphabet" `Quick test_error_code_roundtrip;
        Alcotest.test_case "typed error response" `Quick test_error_response;
        Alcotest.test_case "ack and done decode" `Quick test_ack_done_decode;
        Alcotest.test_case "squeue bounded all-or-nothing" `Quick
          test_squeue_bounded;
        Alcotest.test_case "squeue close semantics" `Quick test_squeue_close;
        Alcotest.test_case "cache monotonic LRU clock" `Quick
          test_cache_monotonic_lru;
        Alcotest.test_case "cache gc key tie-break" `Quick
          test_cache_gc_tie_break;
        Alcotest.test_case "overload refused typed, never a hang" `Quick
          test_server_overload;
      ] );
  ]
